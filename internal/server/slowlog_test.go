package server_test

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"segdb/internal/server"
	"segdb/internal/workload"
)

func TestSlowLogCrossed(t *testing.T) {
	var nilLog *server.SlowLog
	if nilLog.Crossed(time.Hour, 1<<30) {
		t.Fatal("nil slow log crossed a threshold")
	}

	l := server.NewSlowLog(4, 100*time.Millisecond, 50, nil)
	cases := []struct {
		elapsed time.Duration
		pages   int64
		want    bool
	}{
		{50 * time.Millisecond, 10, false},
		{150 * time.Millisecond, 10, true},  // latency threshold
		{50 * time.Millisecond, 100, true},  // I/O threshold
		{100 * time.Millisecond, 50, false}, // thresholds are strict
	}
	for i, c := range cases {
		if got := l.Crossed(c.elapsed, c.pages); got != c.want {
			t.Fatalf("case %d: Crossed(%v, %d) = %v, want %v", i, c.elapsed, c.pages, got, c.want)
		}
	}

	// Disabled dimensions never trigger.
	off := server.NewSlowLog(4, 0, 0, nil)
	if off.Crossed(time.Hour, 1<<30) {
		t.Fatal("thresholds 0/0 must disable the log")
	}
}

func TestSlowLogRing(t *testing.T) {
	var sunk []server.SlowEntry
	l := server.NewSlowLog(3, time.Millisecond, 0, func(e server.SlowEntry) {
		sunk = append(sunk, e)
	})
	for i := 0; i < 5; i++ {
		l.Record(server.SlowEntry{Answers: i})
	}
	s := l.Snapshot()
	if s.Total != 5 || s.Capacity != 3 {
		t.Fatalf("snapshot total %d capacity %d, want 5/3", s.Total, s.Capacity)
	}
	if len(s.Entries) != 3 {
		t.Fatalf("%d retained entries, want 3", len(s.Entries))
	}
	// Newest first: 4, 3, 2 survive the 3-slot ring.
	for i, want := range []int{4, 3, 2} {
		if s.Entries[i].Answers != want {
			t.Fatalf("entry %d = %d, want %d (newest first)", i, s.Entries[i].Answers, want)
		}
	}
	if len(sunk) != 5 {
		t.Fatalf("sink saw %d entries, want all 5", len(sunk))
	}
}

// TestSlowLogConcurrent hammers Record/Snapshot from many goroutines
// under -race: totals must be exact and snapshots internally consistent.
// Every entry is written with Answers == Inflight == its writer's id, so
// a snapshot taken under anything weaker than the ring's single lock
// acquisition would surface as a torn entry whose fields disagree.
func TestSlowLogConcurrent(t *testing.T) {
	l := server.NewSlowLog(8, time.Millisecond, 0, nil)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Record(server.SlowEntry{Answers: w, Inflight: w})
				if i%32 == 0 {
					s := l.Snapshot()
					if len(s.Entries) > s.Capacity {
						t.Errorf("snapshot holds %d entries, capacity %d", len(s.Entries), s.Capacity)
						return
					}
					for _, e := range s.Entries {
						if e.Answers != e.Inflight {
							t.Errorf("torn entry: answers %d, inflight %d", e.Answers, e.Inflight)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s := l.Snapshot(); s.Total != writers*perWriter {
		t.Fatalf("total %d, want %d", s.Total, writers*perWriter)
	}
}

// TestServeSlowQueryLog drives traffic with a log-everything threshold
// and asserts /statsz?slow=1 exposes the ring — entries carry the query
// shape, status and I/O attribution — while plain /statsz omits it.
func TestServeSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var sunk []server.SlowEntry
	hs, _, segs := testServer(t, server.Config{
		SlowLatency: 1, // a nanosecond: everything is slow
		SlowLogSize: 16,
		SlowSink: func(e server.SlowEntry) {
			mu.Lock()
			sunk = append(sunk, e)
			mu.Unlock()
		},
	})
	box := workload.BBox(segs)
	rng := rand.New(rand.NewSource(13))
	queries := workload.RandomVS(rng, 6, box, 3)
	for _, q := range queries {
		postQuery(t, hs.URL, server.QueryRequest{
			QuerySpec: server.QuerySpec{X: q.X, YLo: ptr(q.YLo), YHi: ptr(q.YHi)},
		})
	}
	var batch server.QueryRequest
	for _, q := range queries[:3] {
		batch.Queries = append(batch.Queries, server.QuerySpec{X: q.X})
	}
	postQuery(t, hs.URL, batch)

	var snap server.Snapshot
	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.SlowLog != nil {
		t.Fatal("plain /statsz must omit the slow ring")
	}

	resp, err = http.Get(hs.URL + "/statsz?slow=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.SlowLog == nil {
		t.Fatal("/statsz?slow=1 returned no slow ring")
	}
	want := int64(len(queries) + 1) // every single query + the batch
	if snap.SlowLog.Total != want {
		t.Fatalf("slow total = %d, want %d", snap.SlowLog.Total, want)
	}
	var sawBatch, sawSingle bool
	for _, e := range snap.SlowLog.Entries {
		if e.Status != "ok" {
			t.Fatalf("entry status %q, want ok", e.Status)
		}
		if e.Query == "" || e.Time.IsZero() {
			t.Fatalf("entry missing query shape or time: %+v", e)
		}
		switch e.Endpoint {
		case "batch":
			sawBatch = true
			if e.Query != "batch[3]" {
				t.Fatalf("batch entry query = %q, want batch[3]", e.Query)
			}
		case "query":
			sawSingle = true
		}
	}
	if !sawBatch || !sawSingle {
		t.Fatalf("ring missing endpoints: batch=%v single=%v", sawBatch, sawSingle)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(len(sunk)) != want {
		t.Fatalf("sink saw %d entries, want %d", len(sunk), want)
	}
}
