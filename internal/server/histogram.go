// Package server is segdb's network query-serving subsystem: an HTTP
// handler over a Synchronized index with explicit admission control,
// graceful drain, and lock-free request metrics. Command segdbd wraps it
// in a daemon; command segload drives it closed-loop.
//
// The request path is deliberately short: decode → admit (non-blocking
// semaphore; saturation sheds with 429 rather than queueing) → query
// under the index's shared lock → encode. Observability is on-path but
// lock-free — per-endpoint counters and fixed-bucket latency histograms
// are single atomic adds, so /statsz never perturbs the traffic it
// measures.
package server

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency buckets. Bucket i counts
// observations in (bound(i-1), bound(i)] with bound(i) = 1µs·2^i:
// 1µs, 2µs, ... up to ~67s, with a final overflow bucket.
const histBuckets = 27

// histBase is the upper bound of bucket 0.
const histBase = time.Microsecond

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// bounds. Observe is a single atomic add per field — no locks, safe on
// the request hot path.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds, monotone
}

// bucketOf returns the bucket index for duration d.
func bucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	b := 0
	for bound := histBase; d > bound && b < histBuckets-1; bound <<= 1 {
		b++
	}
	return b
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, in a form
// that serializes cleanly to JSON and supports quantile estimation.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	Buckets []int64 `json:"buckets,omitempty"` // non-empty prefix of bucket counts
}

// Snapshot copies the histogram and pre-computes the summary quantiles.
// Under concurrent traffic the copy is consistent per bucket, not across
// buckets — the usual monitoring contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var counts [histBuckets]int64
	last := -1
	for i := range counts {
		counts[i] = h.counts[i].Load()
		if counts[i] != 0 {
			last = i
		}
	}
	s.Count = h.count.Load()
	if s.Count > 0 {
		s.MeanMS = float64(h.sum.Load()) / float64(s.Count) / 1e6
	}
	s.MaxMS = float64(h.max.Load()) / 1e6
	s.Buckets = counts[:last+1]
	s.P50MS = quantile(counts[:], s.Count, 0.50)
	s.P90MS = quantile(counts[:], s.Count, 0.90)
	s.P99MS = quantile(counts[:], s.Count, 0.99)
	return s
}

// quantile estimates the p-quantile in milliseconds from bucket counts,
// taking the upper bound of the bucket the rank falls in (conservative:
// never under-reports a tail).
func quantile(counts []int64, total int64, p float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum > rank {
			return bucketBoundMS(i)
		}
	}
	return bucketBoundMS(len(counts) - 1)
}

// bucketBoundMS returns the upper bound of bucket i in milliseconds.
func bucketBoundMS(i int) float64 {
	return float64(int64(histBase)<<uint(i)) / 1e6
}

// BucketBoundsMS lists every bucket's upper bound in milliseconds; index
// i corresponds to Buckets[i] of a snapshot. The last bucket is an
// overflow bucket and its bound is nominal.
func BucketBoundsMS() []float64 {
	out := make([]float64, histBuckets)
	for i := range out {
		out[i] = bucketBoundMS(i)
	}
	return out
}

// Merge adds o's counts into h. It is meant for combining per-worker
// client-side histograms after a run, not for concurrent use with
// Observe on o.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for {
		cur, om := h.max.Load(), o.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}
