// Package server is segdb's network query-serving subsystem: an HTTP
// handler over a Synchronized index with explicit admission control,
// graceful drain, and lock-free request metrics. Command segdbd wraps it
// in a daemon; command segload drives it closed-loop.
//
// The request path is deliberately short: decode → admit (non-blocking
// semaphore; saturation sheds with 429 rather than queueing) → query
// under the index's shared lock → encode. Observability is on-path but
// lock-free — per-endpoint counters, latency histograms and per-query
// I/O histograms are single atomic adds, so neither /statsz nor
// /metricsz perturbs the traffic they measure.
package server

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of histogram buckets. For a histogram with
// base b, bucket i counts observations in (b·2^(i-1), b·2^i], so the
// latency histogram (base 1µs) spans 1µs … ~67s and the I/O histogram
// (base 1 page) spans 1 … 2^26 pages, each with a final overflow bucket.
const histBuckets = 27

// histBase is the bucket-0 upper bound of the latency histogram.
const histBase = time.Microsecond

// hist is the lock-free fixed-bucket core shared by the latency and I/O
// histograms: power-of-two bucket upper bounds base·2^i over unit-less
// int64 observations. Observe is a handful of atomic adds — no locks,
// safe on the request hot path.
type hist struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64 // monotone
}

// bucketOf returns the bucket index for value v against base.
func bucketOf(v, base int64) int {
	if v < 0 {
		v = 0
	}
	b := 0
	for bound := base; v > bound && b < histBuckets-1; bound <<= 1 {
		b++
	}
	return b
}

func (h *hist) observe(v, base int64) {
	h.counts[bucketOf(v, base)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// histSnap is a raw point-in-time copy of a hist. Total is computed from
// the loaded bucket counts — never from a separately-loaded counter — so
// a rank derived from it can never exceed the summed buckets, even under
// concurrent observes (the quantile-vs-overflow race the first version
// of this file had).
type histSnap struct {
	counts [histBuckets]int64
	total  int64
	sum    int64
	max    int64
	last   int // index of the last non-zero bucket, -1 if none
}

func (h *hist) snapshot() histSnap {
	var s histSnap
	s.last = -1
	for i := range s.counts {
		c := h.counts[i].Load()
		s.counts[i] = c
		s.total += c
		if c != 0 {
			s.last = i
		}
	}
	s.sum = h.sum.Load()
	s.max = h.max.Load()
	return s
}

// quantile estimates the p-quantile in base units from the snapshot,
// taking the upper bound of the bucket the rank falls in (conservative:
// never under-reports a tail).
func (s histSnap) quantile(p float64, base int64) float64 {
	if s.total == 0 {
		return 0
	}
	rank := int64(p * float64(s.total))
	if rank >= s.total {
		rank = s.total - 1
	}
	var cum int64
	for i, c := range s.counts {
		cum += c
		if cum > rank {
			return bucketBound(i, base)
		}
	}
	return bucketBound(histBuckets-1, base)
}

// bucketBound returns the upper bound of bucket i in base units.
func bucketBound(i int, base int64) float64 {
	return float64(base << uint(i))
}

// bucketBoundMS returns the upper bound of latency bucket i in
// milliseconds.
func bucketBoundMS(i int) float64 { return bucketBound(i, int64(histBase)) / 1e6 }

func (h *hist) merge(o *hist) {
	for i := range h.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.sum.Add(o.sum.Load())
	for {
		cur, om := h.max.Load(), o.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Histogram is the fixed-bucket latency histogram with power-of-two
// bucket bounds (1µs … ~67s plus overflow); see hist for the concurrency
// contract.
type Histogram struct{ h hist }

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) { h.h.observe(int64(d), int64(histBase)) }

// HistogramSnapshot is a point-in-time copy of a Histogram, in a form
// that serializes cleanly to JSON and supports quantile estimation.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	SumMS   float64 `json:"sum_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	Buckets []int64 `json:"buckets,omitempty"` // non-empty prefix of bucket counts
}

// Snapshot copies the histogram and pre-computes the summary quantiles.
// Under concurrent traffic the copy is consistent per bucket, not across
// buckets — the usual monitoring contract. Count is the sum of the
// copied buckets, so quantile ranks always fall inside them.
func (h *Histogram) Snapshot() HistogramSnapshot {
	raw := h.h.snapshot()
	s := HistogramSnapshot{
		Count: raw.total,
		SumMS: float64(raw.sum) / 1e6,
		MaxMS: float64(raw.max) / 1e6,
		P50MS: raw.quantile(0.50, int64(histBase)) / 1e6,
		P90MS: raw.quantile(0.90, int64(histBase)) / 1e6,
		P99MS: raw.quantile(0.99, int64(histBase)) / 1e6,
	}
	if s.Count > 0 {
		s.MeanMS = s.SumMS / float64(s.Count)
	}
	s.Buckets = raw.counts[:raw.last+1]
	return s
}

// Merge adds o's counts into h. It is meant for combining per-worker
// client-side histograms after a run, not for concurrent use with
// Observe on o.
func (h *Histogram) Merge(o *Histogram) { h.h.merge(&o.h) }

// BucketBoundsMS lists every latency bucket's upper bound in
// milliseconds; index i corresponds to Buckets[i] of a snapshot. The
// last bucket is an overflow bucket and its bound is nominal.
func BucketBoundsMS() []float64 {
	out := make([]float64, histBuckets)
	for i := range out {
		out[i] = bucketBound(i, int64(histBase)) / 1e6
	}
	return out
}

// IOHistogram is the fixed-bucket histogram of per-query I/O counts
// (pages read, pool hits): power-of-two bucket bounds 1, 2, 4, … 2^26
// plus overflow. Same concurrency contract as Histogram.
type IOHistogram struct{ h hist }

// Observe records one per-query count.
func (h *IOHistogram) Observe(n int64) { h.h.observe(n, 1) }

// IOHistogramSnapshot is a point-in-time copy of an IOHistogram. Units
// are plain counts (pages), not durations.
type IOHistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Mean    float64 `json:"mean"`
	Max     int64   `json:"max"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Buckets []int64 `json:"buckets,omitempty"` // non-empty prefix of bucket counts
}

// Snapshot copies the histogram; the same consistency contract as
// Histogram.Snapshot applies.
func (h *IOHistogram) Snapshot() IOHistogramSnapshot {
	raw := h.h.snapshot()
	s := IOHistogramSnapshot{
		Count: raw.total,
		Sum:   raw.sum,
		Max:   raw.max,
		P50:   raw.quantile(0.50, 1),
		P90:   raw.quantile(0.90, 1),
		P99:   raw.quantile(0.99, 1),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	s.Buckets = raw.counts[:raw.last+1]
	return s
}

// IOBucketBounds lists every I/O bucket's upper bound in pages; index i
// corresponds to Buckets[i] of a snapshot. The last bucket is an
// overflow bucket and its bound is nominal.
func IOBucketBounds() []float64 {
	out := make([]float64, histBuckets)
	for i := range out {
		out[i] = bucketBound(i, 1)
	}
	return out
}
