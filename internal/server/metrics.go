package server

import (
	"sync/atomic"
	"time"

	"segdb"
	"segdb/internal/repl"
	"segdb/internal/shard"
	"segdb/internal/trace"
)

// Endpoint identifies a served endpoint for metric attribution.
type Endpoint int

// The instrumented endpoints. EPParse is a pseudo-endpoint: a request
// whose body does not decode cannot be attributed to the single or batch
// form, so it is counted — one request, one error — on its own row, which
// keeps the errors ≤ requests invariant on every row (the seed counted
// decode failures as query errors without counting the request).
const (
	EPQuery  Endpoint = iota // POST /v1/query, single form
	EPBatch                  // POST /v1/query, batch form
	EPStatsz                 // GET /statsz
	EPParse                  // POST /v1/query, body failed to decode
	EPInsert                 // POST /v1/insert
	EPDelete                 // POST /v1/delete
	numEndpoints
)

var endpointNames = [numEndpoints]string{"query", "batch", "statsz", "parse", "insert", "delete"}

// QueryIO is the per-request I/O attribution recorded next to latency:
// physical pages read and buffer-pool hits during the request's queries
// (summed over a batch), plus pages written for update requests. See
// segdb.SynchronizedOn for the attribution semantics.
type QueryIO struct {
	PagesRead    int64
	PoolHits     int64
	PagesWritten int64
}

// Add folds one query's stats into the request total.
func (io *QueryIO) Add(st segdb.QueryStats) {
	io.PagesRead += st.PagesRead
	io.PoolHits += st.PoolHits
}

// AddUpdate folds one update's I/O attribution into the request total.
func (io *QueryIO) AddUpdate(st segdb.UpdateStats) {
	io.PagesRead += st.PagesRead
	io.PoolHits += st.PoolHits
	io.PagesWritten += st.PagesWritten
}

// endpointCounters is one endpoint's lock-free counter block.
type endpointCounters struct {
	requests     atomic.Int64 // requests that reached the handler
	errors       atomic.Int64 // 4xx responses other than sheds
	failures     atomic.Int64 // 5xx responses
	shed         atomic.Int64 // 429/503 shed by admission
	answers      atomic.Int64 // segments reported
	pagesIO      atomic.Int64 // physical pages read, total
	hitsIO       atomic.Int64 // pool hits, total
	writesIO     atomic.Int64 // physical pages written, total
	latency      Histogram    // of admitted, completed requests
	pagesRead    IOHistogram  // per-request physical pages read
	poolHits     IOHistogram  // per-request pool hits
	pagesWritten IOHistogram  // per-request physical pages written
}

// Metrics is the server's lock-free metric registry. Every mutation on
// the request path is a handful of atomic adds. Both /statsz and
// /metricsz render snapshots of this one registry, so the two surfaces
// can never structurally disagree.
type Metrics struct {
	start     time.Time
	endpoints [numEndpoints]endpointCounters
	// stages are the per-stage latency histograms fed by the tracer's
	// Observe hook: every traced request's span durations land here
	// whether or not the trace is kept, so segdb_stage_seconds sees full
	// traffic at any sample rate > 0 (and stays empty at rate 0).
	stages [trace.NumStages]Histogram
}

// NewMetrics returns an empty registry anchored at now.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// OnRequest counts a request reaching ep's handler.
func (m *Metrics) OnRequest(ep Endpoint) { m.endpoints[ep].requests.Add(1) }

// OnShed counts a request shed by admission control.
func (m *Metrics) OnShed(ep Endpoint) { m.endpoints[ep].shed.Add(1) }

// OnError counts a client (4xx) error response.
func (m *Metrics) OnError(ep Endpoint) { m.endpoints[ep].errors.Add(1) }

// OnFailure counts a server (5xx) error response.
func (m *Metrics) OnFailure(ep Endpoint) { m.endpoints[ep].failures.Add(1) }

// OnParseError counts a request whose body failed to decode: one request
// and one error on the dedicated parse row.
func (m *Metrics) OnParseError() {
	m.OnRequest(EPParse)
	m.OnError(EPParse)
}

// ObserveStage records one finished span's duration on its stage
// histogram — the tracer's Observe hook.
func (m *Metrics) ObserveStage(st trace.Stage, d time.Duration) {
	if st < trace.NumStages {
		m.stages[st].Observe(d)
	}
}

// OnDone records a completed admitted request: its latency, how many
// answer segments it reported, and its I/O attribution.
func (m *Metrics) OnDone(ep Endpoint, d time.Duration, answers int, io QueryIO) {
	c := &m.endpoints[ep]
	c.latency.Observe(d)
	c.answers.Add(int64(answers))
	c.pagesIO.Add(io.PagesRead)
	c.hitsIO.Add(io.PoolHits)
	c.writesIO.Add(io.PagesWritten)
	c.pagesRead.Observe(io.PagesRead)
	c.poolHits.Observe(io.PoolHits)
	c.pagesWritten.Observe(io.PagesWritten)
}

// EndpointSnapshot is one endpoint's counters at a point in time.
type EndpointSnapshot struct {
	Requests     int64               `json:"requests"`
	Errors       int64               `json:"errors,omitempty"`
	Failures     int64               `json:"failures,omitempty"`
	Shed         int64               `json:"shed,omitempty"`
	Answers      int64               `json:"answers,omitempty"`
	IOReads      int64               `json:"io_reads,omitempty"`
	IOHits       int64               `json:"io_hits,omitempty"`
	IOWrites     int64               `json:"io_writes,omitempty"`
	HitRatio     float64             `json:"io_hit_ratio,omitempty"`
	Latency      HistogramSnapshot   `json:"latency"`
	PagesRead    IOHistogramSnapshot `json:"pages_read"`
	PoolHits     IOHistogramSnapshot `json:"pool_hits"`
	PagesWritten IOHistogramSnapshot `json:"pages_written"`
}

// StoreSnapshot is the store-level view: totals, the pool hit ratio, and
// the per-shard breakdown exposing load balance across pool shards.
type StoreSnapshot struct {
	PagesInUse int             `json:"pages_in_use"`
	PageSize   int             `json:"page_size"`
	HitRatio   float64         `json:"hit_ratio"`
	Total      segdb.IOStats   `json:"total"`
	Shards     []segdb.IOStats `json:"shards,omitempty"`
}

// WALSnapshot is the write-ahead log's view for a read-write server:
// how many records the live log holds, its size, and the durable
// watermark (bytes acknowledged as fsynced). Wedged is the log's
// fail-stop latch: once a commit write or fsync fails, the log refuses
// further writes until restart, and this gauge is how operators see it
// without waiting for the next write to 500.
type WALSnapshot struct {
	Records      int64  `json:"records"`
	SizeBytes    int64  `json:"size_bytes"`
	DurableBytes int64  `json:"durable_bytes"`
	Wedged       bool   `json:"wedged"`
	WedgedError  string `json:"wedged_error,omitempty"`
}

// Snapshot is the full /statsz document. segload decodes it to fold
// server-side stats into its report, so every field round-trips JSON.
// WriteAdmission and WAL are present only on a read-write server;
// ReplLeader only on a leader, Repl only on a follower.
type Snapshot struct {
	UptimeSeconds  float64                      `json:"uptime_seconds"`
	Segments       int                          `json:"segments"`
	Admission      GateStats                    `json:"admission"`
	WriteAdmission *GateStats                   `json:"write_admission,omitempty"`
	Endpoints      map[string]EndpointSnapshot  `json:"endpoints"`
	Stages         map[string]HistogramSnapshot `json:"stages,omitempty"`
	Store          StoreSnapshot                `json:"store"`
	Shards         []shard.Status               `json:"shards,omitempty"`
	WAL            *WALSnapshot                 `json:"wal,omitempty"`
	Compact        *CompactSnapshot             `json:"compact,omitempty"`
	ReplLeader     *repl.LeaderStats            `json:"repl_leader,omitempty"`
	Repl           *repl.Status                 `json:"repl,omitempty"`
	SlowLog        *SlowLogSnapshot             `json:"slow_log,omitempty"`
}

// SnapshotFrom assembles the full document from the metric registry, the
// gate and the served store/index.
func SnapshotFrom(m *Metrics, g *Gate, st *segdb.Store, segments int) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Segments:      segments,
		Admission:     g.Stats(),
		Endpoints:     make(map[string]EndpointSnapshot, numEndpoints),
	}
	for ep := Endpoint(0); ep < numEndpoints; ep++ {
		c := &m.endpoints[ep]
		es := EndpointSnapshot{
			Requests:     c.requests.Load(),
			Errors:       c.errors.Load(),
			Failures:     c.failures.Load(),
			Shed:         c.shed.Load(),
			Answers:      c.answers.Load(),
			IOReads:      c.pagesIO.Load(),
			IOHits:       c.hitsIO.Load(),
			IOWrites:     c.writesIO.Load(),
			Latency:      c.latency.Snapshot(),
			PagesRead:    c.pagesRead.Snapshot(),
			PoolHits:     c.poolHits.Snapshot(),
			PagesWritten: c.pagesWritten.Snapshot(),
		}
		if tot := es.IOReads + es.IOHits; tot > 0 {
			es.HitRatio = float64(es.IOHits) / float64(tot)
		}
		s.Endpoints[endpointNames[ep]] = es
	}
	// Stage histograms appear once any stage has observations — i.e. once
	// tracing is enabled and traffic flowed — and only the touched stages,
	// so a tracing-off server's documents are byte-identical to before.
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		hs := m.stages[st].Snapshot()
		if hs.Count == 0 {
			continue
		}
		if s.Stages == nil {
			s.Stages = make(map[string]HistogramSnapshot)
		}
		s.Stages[st.String()] = hs
	}
	if st != nil {
		total := st.Stats()
		s.Store = StoreSnapshot{
			PagesInUse: st.PagesInUse(),
			PageSize:   st.PageSize(),
			HitRatio:   total.HitRatio(),
			Total:      total,
			Shards:     st.StatsByShard(),
		}
	}
	return s
}

// storeFromShards synthesizes the store section of a sharded server,
// which has K pagers instead of one: pages in use and I/O counters sum,
// the hit ratio is recomputed from the summed counters, and the per-row
// breakdown is the per-shard pagers' (one pool per shard — sharding
// replaces the single pool's internal sharding as the balance view).
func storeFromShards(shards []shard.Status) StoreSnapshot {
	var out StoreSnapshot
	for _, sh := range shards {
		out.PagesInUse += sh.PagesInUse
		out.PageSize = sh.PageSize
		out.Total.Reads += sh.IO.Reads
		out.Total.Writes += sh.IO.Writes
		out.Total.CacheHits += sh.IO.CacheHits
		out.Total.Allocs += sh.IO.Allocs
		out.Total.Frees += sh.IO.Frees
		out.Shards = append(out.Shards, sh.IO)
	}
	out.HitRatio = out.Total.HitRatio()
	return out
}
