package server

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"segdb/internal/trace"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4). It is fed by the same SnapshotFrom derivation
// /statsz serves, so the two surfaces expose one registry and can never
// structurally disagree — a counter present here is the same atomic the
// JSON document reports.
//
// Latency histograms are exported in seconds (the Prometheus base unit)
// as cumulative _bucket series; per-query I/O histograms keep their
// natural unit, pages. The last internal bucket of each histogram is an
// overflow bucket whose bound is nominal, so it is folded into le="+Inf"
// rather than exported under a bound it does not honour.
func WritePrometheus(w io.Writer, s Snapshot) {
	p := promWriter{w: w}

	p.family("segdb_uptime_seconds", "Seconds since the metric registry was created.", "gauge")
	p.sample("segdb_uptime_seconds", "", s.UptimeSeconds)
	p.family("segdb_index_segments", "Segments stored in the served index.", "gauge")
	p.sample("segdb_index_segments", "", float64(s.Segments))

	// Per-endpoint counters, in fixed endpoint order so output is
	// deterministic (the JSON map is not).
	p.family("segdb_requests_total", "Requests reaching each endpoint's handler; the parse endpoint counts bodies that failed to decode.", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_requests_total", endpointLabel(name), float64(ep.Requests))
	})
	p.family("segdb_request_errors_total", "Client (4xx) error responses other than sheds.", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_request_errors_total", endpointLabel(name), float64(ep.Errors))
	})
	p.family("segdb_request_failures_total", "Server (5xx) error responses.", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_request_failures_total", endpointLabel(name), float64(ep.Failures))
	})
	p.family("segdb_requests_shed_total", "Requests shed by admission control (429/503).", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_requests_shed_total", endpointLabel(name), float64(ep.Shed))
	})
	p.family("segdb_answers_total", "Answer segments reported.", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_answers_total", endpointLabel(name), float64(ep.Answers))
	})
	p.family("segdb_io_pages_read_total", "Physical pages read attributed to each endpoint's queries.", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_io_pages_read_total", endpointLabel(name), float64(ep.IOReads))
	})
	p.family("segdb_io_pool_hits_total", "Buffer-pool hits attributed to each endpoint's queries.", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_io_pool_hits_total", endpointLabel(name), float64(ep.IOHits))
	})
	p.family("segdb_io_pages_written_total", "Physical pages written attributed to each endpoint's updates.", "counter")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.sample("segdb_io_pages_written_total", endpointLabel(name), float64(ep.IOWrites))
	})

	// Histograms: request latency (seconds) and per-query I/O (pages).
	p.family("segdb_request_latency_seconds", "Latency of admitted, completed requests.", "histogram")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.histogram("segdb_request_latency_seconds", endpointLabel(name), ep.Latency.Buckets,
			latencySecondsBounds(), ep.Latency.Count, ep.Latency.SumMS/1e3)
	})
	p.family("segdb_query_pages_read", "Physical pages read per request (batch requests sum their queries).", "histogram")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.histogram("segdb_query_pages_read", endpointLabel(name), ep.PagesRead.Buckets,
			IOBucketBounds(), ep.PagesRead.Count, float64(ep.PagesRead.Sum))
	})
	p.family("segdb_query_pool_hits", "Buffer-pool hits per request (batch requests sum their queries).", "histogram")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.histogram("segdb_query_pool_hits", endpointLabel(name), ep.PoolHits.Buckets,
			IOBucketBounds(), ep.PoolHits.Count, float64(ep.PoolHits.Sum))
	})
	p.family("segdb_query_pages_written", "Physical pages written per request; non-zero only on update endpoints.", "histogram")
	p.eachEndpoint(s, func(name string, ep EndpointSnapshot) {
		p.histogram("segdb_query_pages_written", endpointLabel(name), ep.PagesWritten.Buckets,
			IOBucketBounds(), ep.PagesWritten.Count, float64(ep.PagesWritten.Sum))
	})

	// Per-stage latency from the tracer's span observations; present once
	// tracing is on and traffic flowed, in fixed taxonomy order.
	if len(s.Stages) > 0 {
		p.family("segdb_stage_seconds", "Time spent in each request stage by traced requests (span durations; see /tracez).", "histogram")
		for _, st := range trace.StageNames() {
			h, ok := s.Stages[st]
			if !ok {
				continue
			}
			p.histogram("segdb_stage_seconds", stageLabel(st), h.Buckets,
				latencySecondsBounds(), h.Count, h.SumMS/1e3)
		}
	}

	// Admission gate.
	p.family("segdb_inflight_requests", "Currently admitted requests.", "gauge")
	p.sample("segdb_inflight_requests", "", float64(s.Admission.Inflight))
	p.family("segdb_inflight_limit", "Admission capacity; load beyond it is shed.", "gauge")
	p.sample("segdb_inflight_limit", "", float64(s.Admission.MaxInflight))
	p.family("segdb_admitted_total", "Requests admitted by the gate.", "counter")
	p.sample("segdb_admitted_total", "", float64(s.Admission.Admitted))
	p.family("segdb_admission_shed_total", "Requests shed at saturation (429).", "counter")
	p.sample("segdb_admission_shed_total", "", float64(s.Admission.Shed))
	p.family("segdb_admission_rejected_total", "Requests rejected while draining (503).", "counter")
	p.sample("segdb_admission_rejected_total", "", float64(s.Admission.Rejected))
	p.family("segdb_draining", "1 while the server is draining, else 0.", "gauge")
	p.sample("segdb_draining", "", boolGauge(s.Admission.Draining))

	// Write path: present only on a read-write server.
	if s.WriteAdmission != nil {
		p.family("segdb_inflight_updates", "Currently admitted updates.", "gauge")
		p.sample("segdb_inflight_updates", "", float64(s.WriteAdmission.Inflight))
		p.family("segdb_inflight_updates_limit", "Write-admission capacity; update load beyond it is shed.", "gauge")
		p.sample("segdb_inflight_updates_limit", "", float64(s.WriteAdmission.MaxInflight))
		p.family("segdb_updates_admitted_total", "Updates admitted by the write gate.", "counter")
		p.sample("segdb_updates_admitted_total", "", float64(s.WriteAdmission.Admitted))
		p.family("segdb_updates_shed_total", "Updates shed at write saturation (429).", "counter")
		p.sample("segdb_updates_shed_total", "", float64(s.WriteAdmission.Shed))
	}
	if s.WAL != nil {
		p.family("segdb_wal_records", "Records in the live write-ahead log since the last checkpoint.", "gauge")
		p.sample("segdb_wal_records", "", float64(s.WAL.Records))
		p.family("segdb_wal_size_bytes", "Size of the live write-ahead log.", "gauge")
		p.sample("segdb_wal_size_bytes", "", float64(s.WAL.SizeBytes))
		p.family("segdb_wal_durable_bytes", "Fsync-covered prefix of the write-ahead log.", "gauge")
		p.sample("segdb_wal_durable_bytes", "", float64(s.WAL.DurableBytes))
		p.family("segdb_wal_wedged", "1 once the WAL latched a write/fsync failure and refuses writes, else 0.", "gauge")
		p.sample("segdb_wal_wedged", "", boolGauge(s.WAL.Wedged))
	}

	// Compaction: present on any server whose Updater can checkpoint.
	if s.Compact != nil {
		p.family("segdb_compact_total", "Completed compaction attempts (admin, shutdown and auto).", "counter")
		p.sample("segdb_compact_total", "", float64(s.Compact.Total))
		p.family("segdb_compact_failures_total", "Compaction attempts that returned an error.", "counter")
		p.sample("segdb_compact_failures_total", "", float64(s.Compact.Failures))
		p.family("segdb_compact_auto_total", "Compactions fired by the background governor.", "counter")
		p.sample("segdb_compact_auto_total", "", float64(s.Compact.Auto))
		p.family("segdb_compact_deferred_total", "Due compactions the governor deferred (replication lag guard).", "counter")
		p.sample("segdb_compact_deferred_total", "", float64(s.Compact.Deferred))
		p.family("segdb_compact_last_age_seconds", "Seconds since the last compaction finished; -1 before the first.", "gauge")
		p.sample("segdb_compact_last_age_seconds", "", s.Compact.LastAgeSeconds)
		p.family("segdb_compact_last_duration_seconds", "Duration of the last compaction.", "gauge")
		p.sample("segdb_compact_last_duration_seconds", "", s.Compact.LastDurationMS/1e3)
	}

	// Replication, leader side: shipping counters and per-follower lag.
	if s.ReplLeader != nil {
		p.family("segdb_repl_epoch", "Replication epoch: count of WAL rotations at this node.", "gauge")
		p.sample("segdb_repl_epoch", "", float64(s.ReplLeader.Epoch))
		p.family("segdb_repl_snapshots_served_total", "Checkpoint snapshots served to bootstrapping followers.", "counter")
		p.sample("segdb_repl_snapshots_served_total", "", float64(s.ReplLeader.SnapshotsServed))
		p.family("segdb_repl_wal_requests_total", "WAL shipping requests served.", "counter")
		p.sample("segdb_repl_wal_requests_total", "", float64(s.ReplLeader.WALRequests))
		p.family("segdb_repl_wal_bytes_shipped_total", "Committed WAL bytes shipped to followers.", "counter")
		p.sample("segdb_repl_wal_bytes_shipped_total", "", float64(s.ReplLeader.WALBytesShipped))
		p.family("segdb_repl_followers", "Followers seen polling within the staleness window.", "gauge")
		p.sample("segdb_repl_followers", "", float64(len(s.ReplLeader.Followers)))
		p.family("segdb_repl_follower_lag_bytes", "Committed log each follower has not yet fetched.", "gauge")
		for _, f := range s.ReplLeader.Followers {
			p.sample("segdb_repl_follower_lag_bytes", followerLabel(f.ID), float64(f.LagBytes))
		}
		p.family("segdb_repl_follower_seconds_since_seen", "Seconds since each follower last polled.", "gauge")
		for _, f := range s.ReplLeader.Followers {
			p.sample("segdb_repl_follower_seconds_since_seen", followerLabel(f.ID), f.SecondsSinceSeen)
		}
	}

	// Replication, follower side: position and lag against the leader.
	if s.Repl != nil {
		if s.ReplLeader == nil { // don't duplicate the family on a node serving both roles
			p.family("segdb_repl_epoch", "Replication epoch: count of WAL rotations at this node.", "gauge")
			p.sample("segdb_repl_epoch", "", float64(s.Repl.Epoch))
		}
		p.family("segdb_repl_applied_lsn", "Leader log position this follower has applied through.", "gauge")
		p.sample("segdb_repl_applied_lsn", "", float64(s.Repl.AppliedLSN))
		p.family("segdb_repl_leader_durable_lsn", "Leader durability watermark as of the last poll.", "gauge")
		p.sample("segdb_repl_leader_durable_lsn", "", float64(s.Repl.LeaderDurableLSN))
		p.family("segdb_repl_lag_bytes", "Committed leader log not yet applied locally.", "gauge")
		p.sample("segdb_repl_lag_bytes", "", float64(s.Repl.LagBytes))
		p.family("segdb_repl_lag_seconds", "Seconds since this follower was last caught up.", "gauge")
		p.sample("segdb_repl_lag_seconds", "", s.Repl.LagSeconds)
		p.family("segdb_repl_caught_up", "1 while applied through the leader's watermark, else 0.", "gauge")
		p.sample("segdb_repl_caught_up", "", boolGauge(s.Repl.CaughtUp))
		p.family("segdb_repl_records_applied_total", "Replicated records applied into the live index.", "counter")
		p.sample("segdb_repl_records_applied_total", "", float64(s.Repl.RecordsApplied))
		p.family("segdb_repl_resnapshots_total", "Full re-bootstraps forced by leader log rotation.", "counter")
		p.sample("segdb_repl_resnapshots_total", "", float64(s.Repl.Resnapshots))
		p.family("segdb_repl_local_wal_records", "Records in the follower's local WAL since its last checkpoint.", "gauge")
		p.sample("segdb_repl_local_wal_records", "", float64(s.Repl.LocalWALRecords))
	}

	// Store: totals plus the per-shard read-path breakdown (pool load
	// balance), all straight from the shard counters.
	p.family("segdb_store_pages_in_use", "Pages allocated in the store: the structure's space cost in blocks.", "gauge")
	p.sample("segdb_store_pages_in_use", "", float64(s.Store.PagesInUse))
	p.family("segdb_store_page_size_bytes", "Page size of the store.", "gauge")
	p.sample("segdb_store_page_size_bytes", "", float64(s.Store.PageSize))
	p.family("segdb_store_hit_ratio", "Fraction of page reads served by the buffer pool.", "gauge")
	p.sample("segdb_store_hit_ratio", "", s.Store.HitRatio)
	p.family("segdb_store_reads_total", "Physical page reads.", "counter")
	p.sample("segdb_store_reads_total", "", float64(s.Store.Total.Reads))
	p.family("segdb_store_writes_total", "Physical page writes.", "counter")
	p.sample("segdb_store_writes_total", "", float64(s.Store.Total.Writes))
	p.family("segdb_store_cache_hits_total", "Page reads served by the buffer pool.", "counter")
	p.sample("segdb_store_cache_hits_total", "", float64(s.Store.Total.CacheHits))
	p.family("segdb_store_shard_reads_total", "Physical page reads by pool shard.", "counter")
	for i, sh := range s.Store.Shards {
		p.sample("segdb_store_shard_reads_total", shardLabel(i), float64(sh.Reads))
	}
	p.family("segdb_store_shard_cache_hits_total", "Buffer-pool hits by pool shard.", "counter")
	for i, sh := range s.Store.Shards {
		p.sample("segdb_store_shard_cache_hits_total", shardLabel(i), float64(sh.CacheHits))
	}

	// Index shards: one labelled row per slab of a sharded store. Absent
	// on a single-index server (no slabs, no rows).
	if len(s.Shards) > 0 {
		p.family("segdb_index_shard_segments", "Segments owned by each index shard (left endpoint inside its slab).", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_segments", shardLabel(sh.Shard), float64(sh.Segments))
		}
		p.family("segdb_index_shard_spanners", "Segments registered on each shard's left-cut spanner list.", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_spanners", shardLabel(sh.Shard), float64(sh.Spanners))
		}
		p.family("segdb_index_shard_wal_records", "Records in each shard's live write-ahead log.", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_wal_records", shardLabel(sh.Shard), float64(sh.WALRecords))
		}
		p.family("segdb_index_shard_wal_size_bytes", "Size of each shard's live write-ahead log.", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_wal_size_bytes", shardLabel(sh.Shard), float64(sh.WALSize))
		}
		p.family("segdb_index_shard_wal_durable_bytes", "Fsync-covered prefix of each shard's write-ahead log.", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_wal_durable_bytes", shardLabel(sh.Shard), float64(sh.WALDurable))
		}
		p.family("segdb_index_shard_wal_wedged", "1 once a shard's WAL latched a failure and refuses writes, else 0.", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_wal_wedged", shardLabel(sh.Shard), boolGauge(sh.WALWedged))
		}
		p.family("segdb_index_shard_pages_in_use", "Pages allocated in each shard's store.", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_pages_in_use", shardLabel(sh.Shard), float64(sh.PagesInUse))
		}
		p.family("segdb_index_shard_reads_total", "Physical page reads of each shard's store.", "counter")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_reads_total", shardLabel(sh.Shard), float64(sh.IO.Reads))
		}
		p.family("segdb_index_shard_cache_hits_total", "Buffer-pool hits of each shard's store.", "counter")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_cache_hits_total", shardLabel(sh.Shard), float64(sh.IO.CacheHits))
		}
		p.family("segdb_index_shard_hit_ratio", "Fraction of each shard's page reads served by its pool.", "gauge")
		for _, sh := range s.Shards {
			p.sample("segdb_index_shard_hit_ratio", shardLabel(sh.Shard), sh.HitRatio)
		}
	}

	if s.SlowLog != nil {
		p.family("segdb_slow_requests_total", "Requests that crossed a slow-query threshold.", "counter")
		p.sample("segdb_slow_requests_total", "", float64(s.SlowLog.Total))
	}
}

// latencySecondsBounds returns the latency bucket upper bounds in
// seconds.
func latencySecondsBounds() []float64 {
	ms := BucketBoundsMS()
	out := make([]float64, len(ms))
	for i, b := range ms {
		out[i] = b / 1e3
	}
	return out
}

func endpointLabel(name string) string { return `endpoint="` + name + `"` }

func stageLabel(name string) string { return `stage="` + name + `"` }

func shardLabel(i int) string { return `shard="` + strconv.Itoa(i) + `"` }

// followerLabel escapes a follower ID for use as a label value —
// follower names come off the wire, so quote/backslash/newline must be
// escaped per the exposition format.
func followerLabel(id string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `follower="` + r.Replace(id) + `"`
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// promWriter accumulates exposition-format lines. Families must be
// emitted contiguously (one HELP/TYPE block followed by all samples of
// the family) — the format forbids interleaving.
type promWriter struct {
	w io.Writer
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(p.w, "%s%s %s\n", name, labels, formatPromValue(v))
}

// histogram writes one labelled series' cumulative _bucket samples plus
// _sum and _count. labels is the series' label pairs without braces
// (e.g. `endpoint="query"` or `stage="wal_fsync"`); buckets is the
// non-empty prefix of per-bucket counts; bounds the full upper-bound
// list in the exported unit. The final internal bucket is an overflow
// bucket, so observations in it appear only under le="+Inf".
func (p *promWriter) histogram(name, labels string, buckets []int64, bounds []float64, count int64, sum float64) {
	var cum int64
	for i, c := range buckets {
		cum += c
		if i == len(bounds)-1 {
			break // overflow bucket: folded into +Inf below
		}
		p.sample(name+"_bucket", labels+`,le="`+formatPromValue(bounds[i])+`"`, float64(cum))
	}
	p.sample(name+"_bucket", labels+`,le="+Inf"`, float64(count))
	p.sample(name+"_sum", labels, sum)
	p.sample(name+"_count", labels, float64(count))
}

func (p *promWriter) eachEndpoint(s Snapshot, f func(name string, ep EndpointSnapshot)) {
	for _, name := range endpointNames {
		if ep, ok := s.Endpoints[name]; ok {
			f(name, ep)
		}
	}
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip representation, no exponent for typical counter values.
func formatPromValue(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// FormatFloat 'g' can produce "1e+06" for large counters; that is
	// valid exposition format, so leave it — but normalize the one case
	// Go renders oddly for the format's float grammar: nothing to do.
	return s
}

// PromText renders the snapshot to a string; tests and tools use it.
func PromText(s Snapshot) string {
	var b strings.Builder
	WritePrometheus(&b, s)
	return b.String()
}
