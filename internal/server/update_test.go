package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"segdb"
	"segdb/internal/server"
)

// durableServer serves a fresh DurableIndex from a temp dir: the
// read-write form segdbd -wal runs.
func durableServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server, *segdb.DurableIndex) {
	t.Helper()
	dir := t.TempDir()
	d, err := segdb.OpenDurableIndex(filepath.Join(dir, "index.db"), filepath.Join(dir, "index.wal"),
		segdb.DurableOptions{Build: segdb.Options{B: 16}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	cfg.Updater = d
	srv := server.New(d.Index(), d.Store(), cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, srv, d
}

func postUpdate(t *testing.T, url, endpoint string, seg server.WireSegment) (*http.Response, server.UpdateResponse) {
	t.Helper()
	body, err := json.Marshal(server.UpdateRequest{WireSegment: seg})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ur server.UpdateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, ur
}

// TestServeInsertDelete drives the write path end to end over HTTP:
// insert, query the segment back, delete, query it gone — plus the
// error surface (absent delete, invalid segment, wrong method) and the
// write-path rows in both /statsz and /metricsz.
func TestServeInsertDelete(t *testing.T) {
	hs, srv, _ := durableServer(t, server.Config{})

	seg := server.WireSegment{ID: 7, AX: 0, AY: 1, BX: 10, BY: 3}
	resp, ur := postUpdate(t, hs.URL, "/v1/insert", seg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: HTTP %d", resp.StatusCode)
	}
	if !ur.Found || ur.Segments != 1 {
		t.Fatalf("insert response: %+v, want found with 1 segment", ur)
	}

	// The insert must be visible to queries immediately.
	qresp, qr := postQuery(t, hs.URL, server.QueryRequest{QuerySpec: server.QuerySpec{X: 5}})
	if qresp.StatusCode != http.StatusOK || qr.Count != 1 || qr.Hits[0].ID != 7 {
		t.Fatalf("query after insert: HTTP %d, %d hits", qresp.StatusCode, qr.Count)
	}

	// Delete must match the stored segment exactly and report Found.
	resp, ur = postUpdate(t, hs.URL, "/v1/delete", seg)
	if resp.StatusCode != http.StatusOK || !ur.Found || ur.Segments != 0 {
		t.Fatalf("delete: HTTP %d, %+v", resp.StatusCode, ur)
	}
	if _, qr := postQuery(t, hs.URL, server.QueryRequest{QuerySpec: server.QuerySpec{X: 5}}); qr.Count != 0 {
		t.Fatalf("deleted segment still answers: %d hits", qr.Count)
	}

	// Deleting again is a durable no-op: 200 with Found false.
	resp, ur = postUpdate(t, hs.URL, "/v1/delete", seg)
	if resp.StatusCode != http.StatusOK || ur.Found {
		t.Fatalf("absent delete: HTTP %d, found %v; want 200, false", resp.StatusCode, ur.Found)
	}

	// Validation errors are the client's fault: 400, never logged.
	if resp, _ := postUpdate(t, hs.URL, "/v1/insert", server.WireSegment{ID: 0, AX: 1, BX: 2}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-ID insert: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(hs.URL + "/v1/insert"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET insert: HTTP %d, want 405", resp.StatusCode)
		}
	}

	snap := srv.Snapshot()
	ins, ok := snap.Endpoints["insert"]
	if !ok || ins.Requests != 2 || ins.Errors != 1 {
		t.Fatalf("insert endpoint row: %+v (present %v), want 2 requests 1 error", ins, ok)
	}
	del := snap.Endpoints["delete"]
	if del.Requests != 2 {
		t.Fatalf("delete endpoint row: %d requests, want 2", del.Requests)
	}
	if snap.WriteAdmission == nil || snap.WriteAdmission.Admitted != 4 {
		t.Fatalf("write admission: %+v, want 4 admitted", snap.WriteAdmission)
	}
	if snap.WAL == nil || snap.WAL.Records != 2 {
		t.Fatalf("wal snapshot: %+v, want 2 records (insert+delete)", snap.WAL)
	}
	if snap.WAL.DurableBytes != snap.WAL.SizeBytes {
		t.Fatalf("wal durable %d != size %d after acknowledged updates",
			snap.WAL.DurableBytes, snap.WAL.SizeBytes)
	}

	// The write path renders on /metricsz next to the read path.
	text := server.PromText(snap)
	for _, want := range []string{
		`segdb_requests_total{endpoint="insert"} 2`,
		`segdb_requests_total{endpoint="delete"} 2`,
		"segdb_wal_records 2",
		"segdb_io_pages_written_total",
		"segdb_query_pages_written_count",
		"segdb_updates_admitted_total 4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metricsz missing %q", want)
		}
	}
}

// TestServeUpdateReadOnly: without an Updater the write endpoints answer
// 501 and point at -wal, and /statsz carries no write-path rows.
func TestServeUpdateReadOnly(t *testing.T) {
	hs, srv, _ := testServer(t, server.Config{})
	for _, ep := range []string{"/v1/insert", "/v1/delete"} {
		resp, _ := postUpdate(t, hs.URL, ep, server.WireSegment{ID: 1, AX: 0, BX: 1})
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("%s on read-only server: HTTP %d, want 501", ep, resp.StatusCode)
		}
	}
	snap := srv.Snapshot()
	if snap.WriteAdmission != nil || snap.WAL != nil {
		t.Fatalf("read-only snapshot carries write-path sections: %+v %+v",
			snap.WriteAdmission, snap.WAL)
	}
}

// TestServeUpdateDrain: draining refuses updates with 503 alongside
// queries, and Drain completes with the write gate empty.
func TestServeUpdateDrain(t *testing.T) {
	hs, srv, _ := durableServer(t, server.Config{})
	srv.BeginDrain()
	resp, _ := postUpdate(t, hs.URL, "/v1/insert", server.WireSegment{ID: 1, AX: 0, AY: 0, BX: 1, BY: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert while draining: HTTP %d, want 503", resp.StatusCode)
	}
	if snap := srv.Snapshot(); snap.Endpoints["insert"].Shed != 1 {
		t.Fatalf("shed not counted on insert row: %+v", snap.Endpoints["insert"])
	}
}

// TestServeInsertSurvivesReopen: an acknowledged insert replays from the
// WAL — the durability promise the 200 makes, without a checkpoint.
func TestServeInsertSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, wal := filepath.Join(dir, "index.db"), filepath.Join(dir, "index.wal")
	d, err := segdb.OpenDurableIndex(db, wal, segdb.DurableOptions{Build: segdb.Options{B: 16}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Updater: d}
	srv := server.New(d.Index(), d.Store(), cfg)
	hs := httptest.NewServer(srv.Handler())
	seg := server.WireSegment{ID: 42, AX: 0, AY: 5, BX: 9, BY: 5}
	if resp, _ := postUpdate(t, hs.URL, "/v1/insert", seg); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: HTTP %d", resp.StatusCode)
	}
	hs.Close()
	// No Compact: closing leaves the record only in the WAL.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := segdb.OpenDurableIndex(db, wal, segdb.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := d2.Index().Len(); n != 1 {
		t.Fatalf("after reopen: %d segments, want the acknowledged insert", n)
	}
	segs, err := d2.Index().Collect()
	if err != nil || len(segs) != 1 || segs[0].ID != 42 {
		t.Fatalf("after reopen: Collect = %v, %v", segs, err)
	}
}
