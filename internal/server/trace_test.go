package server_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"segdb/internal/server"
	"segdb/internal/trace"
	"segdb/internal/workload"
)

// postTraced posts a query with an explicit traceparent header ("" sends
// none) and returns the response with its body decoded when 200.
func postTraced(t *testing.T, url, traceparent string, req server.QueryRequest) (*http.Response, server.QueryResponse) {
	t.Helper()
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set(trace.Header, traceparent)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, qr
}

func fetchTracez(t *testing.T, url string) trace.RingSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez: HTTP %d", resp.StatusCode)
	}
	var ring trace.RingSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	return ring
}

// TestServeTraceparentRoundTrip: an inbound W3C traceparent donates its
// trace ID, the response carries a traceparent for the same trace, and
// /tracez retains the span tree — root, parse, admission, query, encode —
// with every child parented under the root and the trace linked from the
// slow log by its ID.
func TestServeTraceparentRoundTrip(t *testing.T) {
	hs, _, segs := testServer(t, server.Config{
		TraceSample: 1,
		SlowLatency: 1, // log everything: the slow entry must carry the trace id
		SlowLogSize: 8,
	})
	box := workload.BBox(segs)

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp, _ := postTraced(t, hs.URL, inbound, server.QueryRequest{
		QuerySpec: server.QuerySpec{X: box.MinX + (box.MaxX-box.MinX)/2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: HTTP %d", resp.StatusCode)
	}
	outbound := resp.Header.Get(trace.Header)
	otid, _, sampled, ok := trace.ParseTraceparent(outbound)
	if !ok || !sampled {
		t.Fatalf("response traceparent %q must parse as sampled", outbound)
	}
	if otid.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("response trace id %s, want the inbound one", otid)
	}

	ring := fetchTracez(t, hs.URL)
	if ring.SampleRate != 1 || ring.TracesKept < 1 {
		t.Fatalf("ring: rate %v, kept %d", ring.SampleRate, ring.TracesKept)
	}
	ts := ring.Traces[0]
	if ts.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("kept trace id %s, want the inbound one", ts.TraceID)
	}
	if ts.RemoteParent != "00f067aa0ba902b7" {
		t.Fatalf("remote parent %q, want the caller's span id", ts.RemoteParent)
	}

	byStage := map[string][]trace.SpanRecord{}
	for _, sp := range ts.Spans {
		byStage[sp.Stage] = append(byStage[sp.Stage], sp)
	}
	var rootID trace.SpanID
	if roots := byStage["request"]; len(roots) != 1 || roots[0].Parent != 0 {
		t.Fatalf("request spans: %+v", roots)
	} else {
		rootID = roots[0].ID
	}
	for _, stage := range []string{"parse", "admission", "query", "encode"} {
		sps := byStage[stage]
		if len(sps) != 1 {
			t.Fatalf("%d %s spans, want 1 (spans: %+v)", len(sps), stage, ts.Spans)
		}
		if sps[0].Parent != rootID {
			t.Fatalf("%s span parented at %d, want root %d", stage, sps[0].Parent, rootID)
		}
	}
	// The trace's stage time nests inside the request: every span ends at
	// or before the root does.
	rootEnd := byStage["request"][0].StartUS + byStage["request"][0].DurUS
	for _, sp := range ts.Spans {
		if sp.StartUS+sp.DurUS > rootEnd+1 { // 1µs slack for float rounding
			t.Fatalf("span %s overruns the root: %+v", sp.Stage, sp)
		}
	}

	// The slow log links back: its entry carries this trace's ID.
	var snap server.Snapshot
	sresp, err := http.Get(hs.URL + "/statsz?slow=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if snap.SlowLog == nil || len(snap.SlowLog.Entries) == 0 {
		t.Fatal("no slow entries with a log-everything threshold")
	}
	if got := snap.SlowLog.Entries[0].TraceID; got != ts.TraceID {
		t.Fatalf("slow entry trace id %q, want %q", got, ts.TraceID)
	}
}

// TestServeTraceSampleZero: rate 0 disables tracing end to end — no
// response traceparent even for sampled callers, an empty /tracez, and
// no stage histograms on /statsz.
func TestServeTraceSampleZero(t *testing.T) {
	hs, srv, segs := testServer(t, server.Config{})
	box := workload.BBox(segs)
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp, _ := postTraced(t, hs.URL, inbound, server.QueryRequest{
		QuerySpec: server.QuerySpec{X: box.MinX + (box.MaxX-box.MinX)/2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: HTTP %d", resp.StatusCode)
	}
	if h := resp.Header.Get(trace.Header); h != "" {
		t.Fatalf("tracing disabled but response carries traceparent %q", h)
	}
	ring := fetchTracez(t, hs.URL)
	if ring.SampleRate != 0 || ring.TracesStarted != 0 || len(ring.Traces) != 0 {
		t.Fatalf("disabled tracer ring: %+v", ring)
	}
	if st := srv.Snapshot().Stages; st != nil {
		t.Fatalf("disabled tracer produced stage histograms: %v", st)
	}
}

// TestBatchTraceCancelledSpans: a batch that dies on its deadline still
// yields a complete trace — every subquery span present, parented and
// ended, tagged cancelled — and a slow-log entry whose batch attribution
// counts the cancellations. Runs under -race: batch workers append spans
// to one trace concurrently.
func TestBatchTraceCancelledSpans(t *testing.T) {
	hs, _, segs := testServer(t, server.Config{
		TraceSample:    1,
		SlowLatency:    1,
		SlowLogSize:    8,
		DefaultTimeout: time.Nanosecond, // expired before the first subquery
	})
	box := workload.BBox(segs)
	rng := rand.New(rand.NewSource(21))

	var req server.QueryRequest
	const n = 8
	for i := 0; i < n; i++ {
		req.Queries = append(req.Queries, server.QuerySpec{
			X: box.MinX + rng.Float64()*(box.MaxX-box.MinX),
		})
	}
	req.Parallelism = 4
	resp, _ := postTraced(t, hs.URL, "", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline batch: HTTP %d, want 503", resp.StatusCode)
	}

	ring := fetchTracez(t, hs.URL)
	if len(ring.Traces) == 0 {
		t.Fatal("no trace kept at rate 1")
	}
	ts := ring.Traces[0]
	var rootID trace.SpanID
	for _, sp := range ts.Spans {
		if sp.Stage == "request" {
			rootID = sp.ID
		}
	}
	if rootID == 0 {
		t.Fatalf("no root span in %+v", ts.Spans)
	}
	var cancelled int
	for _, sp := range ts.Spans {
		if sp.Stage != "query" {
			continue
		}
		if sp.Parent != rootID {
			t.Fatalf("subquery span parented at %d, want root %d", sp.Parent, rootID)
		}
		if sp.Tags["cancelled"] == "true" {
			cancelled++
		}
	}
	if cancelled != n {
		t.Fatalf("%d cancelled subquery spans, want %d", cancelled, n)
	}

	// The slow-log entry attributes the batch: all n subqueries cancelled.
	var snap server.Snapshot
	sresp, err := http.Get(hs.URL + "/statsz?slow=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if snap.SlowLog == nil || len(snap.SlowLog.Entries) == 0 {
		t.Fatal("no slow entry for the deadline batch")
	}
	e := snap.SlowLog.Entries[0]
	if e.Status != "deadline" || !strings.HasPrefix(e.Query, "batch[") {
		t.Fatalf("slow entry: %+v", e)
	}
	if e.Batch == nil || e.Batch.Cancelled != n {
		t.Fatalf("batch attribution: %+v, want %d cancelled", e.Batch, n)
	}
	if e.TraceID != ts.TraceID {
		t.Fatalf("slow entry trace id %q, want %q", e.TraceID, ts.TraceID)
	}
}

// TestBatchSlowLogAttribution: a completing batch's slow entry names its
// slowest and heaviest subqueries with indexes inside the batch.
func TestBatchSlowLogAttribution(t *testing.T) {
	hs, srv, segs := testServer(t, server.Config{SlowLatency: 1, SlowLogSize: 8})
	box := workload.BBox(segs)
	rng := rand.New(rand.NewSource(22))
	var req server.QueryRequest
	const n = 6
	for i := 0; i < n; i++ {
		req.Queries = append(req.Queries, server.QuerySpec{
			X: box.MinX + rng.Float64()*(box.MaxX-box.MinX),
		})
	}
	resp, _ := postTraced(t, hs.URL, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}
	slow := srv.SlowLog().Snapshot()
	if len(slow.Entries) == 0 {
		t.Fatal("no slow entry with a log-everything threshold")
	}
	e := slow.Entries[0]
	if e.Batch == nil {
		t.Fatalf("batch entry lacks attribution: %+v", e)
	}
	b := e.Batch
	if b.SlowestIndex < 0 || b.SlowestIndex >= n || b.HeaviestIndex < 0 || b.HeaviestIndex >= n {
		t.Fatalf("attribution indexes out of range: %+v", b)
	}
	if b.SlowestMS < 0 || b.HeaviestPages < 0 || b.Cancelled != 0 {
		t.Fatalf("attribution values: %+v", b)
	}
	if e.TraceID != "" {
		t.Fatalf("untraced batch carries trace id %q", e.TraceID)
	}
	// A single query's entry carries no batch attribution.
	postTraced(t, hs.URL, "", server.QueryRequest{
		QuerySpec: server.QuerySpec{X: box.MinX},
	})
	if e := srv.SlowLog().Snapshot().Entries[0]; e.Batch != nil {
		t.Fatalf("single-query entry carries batch attribution: %+v", e)
	}
}

// TestServeStageSecondsPrometheus: with tracing on, /metricsz exposes
// the per-stage histogram family — strictly parsed, HELP/TYPE announced,
// bucket counts monotone — and its sums agree with the /statsz stage
// snapshot, the same registry rendered twice.
func TestServeStageSecondsPrometheus(t *testing.T) {
	hs, srv, segs := testServer(t, server.Config{TraceSample: 1})
	box := workload.BBox(segs)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		resp, _ := postTraced(t, hs.URL, "", server.QueryRequest{
			QuerySpec: server.QuerySpec{X: box.MinX + rng.Float64()*(box.MaxX-box.MinX)},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: HTTP %d", i, resp.StatusCode)
		}
	}

	text := server.PromText(srv.Snapshot())
	samples, types := parsePromStrict(t, text)
	checkPromHistograms(t, samples, types)
	if types["segdb_stage_seconds"] != "histogram" {
		t.Fatalf("segdb_stage_seconds type %q, want histogram", types["segdb_stage_seconds"])
	}
	if !strings.Contains(text, "# HELP segdb_stage_seconds ") {
		t.Fatal("segdb_stage_seconds exported without HELP")
	}

	stages := map[string]struct{ count, sum float64 }{}
	for _, s := range samples {
		st := s.labels["stage"]
		if st == "" {
			continue
		}
		v := stages[st]
		switch s.name {
		case "segdb_stage_seconds_count":
			v.count = s.value
		case "segdb_stage_seconds_sum":
			v.sum = s.value
		}
		stages[st] = v
	}
	snap := srv.Snapshot()
	if len(snap.Stages) == 0 {
		t.Fatal("no stage snapshots with tracing on")
	}
	for _, stage := range []string{"request", "parse", "admission", "query", "encode"} {
		hs, ok := snap.Stages[stage]
		if !ok || hs.Count < 10 {
			t.Fatalf("statsz stage %q: %+v (want ≥10 observations)", stage, hs)
		}
		ps, ok := stages[stage]
		if !ok {
			t.Fatalf("stage %q missing from /metricsz", stage)
		}
		if ps.count != float64(hs.Count) {
			t.Fatalf("stage %q count: prom %v, statsz %d", stage, ps.count, hs.Count)
		}
		wantSum := hs.SumMS / 1e3
		if diff := ps.sum - wantSum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("stage %q sum: prom %v s, statsz %v s", stage, ps.sum, wantSum)
		}
	}
	// Stages that never ran are omitted, not exported as zeros.
	if _, ok := stages["wal_fsync"]; ok {
		t.Fatal("read-only traffic exported a wal_fsync stage")
	}
}
