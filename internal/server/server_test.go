package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"segdb"
	"segdb/internal/faultdev"
	"segdb/internal/pager"
	"segdb/internal/server"
	"segdb/internal/workload"
)

// testServer builds a small Solution-2 index in memory and serves it.
func testServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server, []segdb.Segment) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	segs := workload.Grid(rng, 10, 10, 0.9, 0.2)
	st := segdb.NewMemStore(16, 64)
	ix, err := segdb.CreateSolution2(st, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(segdb.SynchronizedOn(ix, st), st, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, srv, segs
}

func postQuery(t *testing.T, url string, req server.QueryRequest) (*http.Response, server.QueryResponse) {
	t.Helper()
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, qr
}

func ptr(v float64) *float64 { return &v }

// TestServeCorrectness cross-checks HTTP answers — segment, ray, line and
// batch — against CollectQuery ground truth, IDs included.
func TestServeCorrectness(t *testing.T) {
	hs, _, segs := testServer(t, server.Config{})
	box := workload.BBox(segs)
	rng := rand.New(rand.NewSource(4))

	specOf := func(q segdb.Query) server.QuerySpec {
		s := server.QuerySpec{X: q.X}
		// Reconstruct open bounds by omission.
		if q.YLo > -1e300 {
			s.YLo = ptr(q.YLo)
		}
		if q.YHi < 1e300 {
			s.YHi = ptr(q.YHi)
		}
		return s
	}

	queries := workload.RandomVS(rng, 30, box, 4)
	queries = append(queries,
		segdb.VLine(box.MinX+(box.MaxX-box.MinX)/2),
		segdb.VRayUp(box.MinX+(box.MaxX-box.MinX)/3, 1),
		segdb.VRayDown(box.MinX+(box.MaxX-box.MinX)/3, 1),
	)
	for _, q := range queries {
		want := segdb.FilterHits(q, segs)
		resp, qr := postQuery(t, hs.URL, server.QueryRequest{QuerySpec: specOf(q)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %v: HTTP %d", q, resp.StatusCode)
		}
		if qr.Count != len(want) || len(qr.Hits) != len(want) {
			t.Fatalf("query %v: got %d hits, want %d", q, qr.Count, len(want))
		}
		wantIDs := make(map[uint64]bool, len(want))
		for _, s := range want {
			wantIDs[s.ID] = true
		}
		for _, h := range qr.Hits {
			if !wantIDs[h.ID] {
				t.Fatalf("query %v: unexpected hit id %d", q, h.ID)
			}
		}
	}

	// Batch form: one request, index-aligned results.
	var batch server.QueryRequest
	for _, q := range queries {
		batch.Queries = append(batch.Queries, specOf(q))
	}
	batch.Parallelism = 4
	resp, qr := postQuery(t, hs.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}
	if len(qr.Results) != len(queries) {
		t.Fatalf("batch: %d results, want %d", len(qr.Results), len(queries))
	}
	for i, q := range queries {
		if want := len(segdb.FilterHits(q, segs)); qr.Results[i].Count != want {
			t.Fatalf("batch[%d] %v: got %d, want %d", i, q, qr.Results[i].Count, want)
		}
	}

	// omit_hits returns counts without payloads.
	resp, qr = postQuery(t, hs.URL, server.QueryRequest{
		QuerySpec: server.QuerySpec{X: queries[0].X}, OmitHits: true,
	})
	if resp.StatusCode != http.StatusOK || qr.Hits != nil {
		t.Fatalf("omit_hits: HTTP %d, hits %v", resp.StatusCode, qr.Hits)
	}
}

// blockingIndex parks every query until release is closed, making
// admission states reproducible.
type blockingIndex struct {
	entered chan struct{}
	release chan struct{}
	hits    []segdb.Segment
}

func (b *blockingIndex) Query(q segdb.Query, emit func(segdb.Segment)) (segdb.QueryStats, error) {
	b.entered <- struct{}{}
	<-b.release
	for _, s := range b.hits {
		emit(s)
	}
	return segdb.QueryStats{Reported: len(b.hits)}, nil
}

func (b *blockingIndex) Insert(segdb.Segment) error         { return segdb.ErrUnsupported }
func (b *blockingIndex) Delete(segdb.Segment) (bool, error) { return false, segdb.ErrUnsupported }
func (b *blockingIndex) Len() int                           { return len(b.hits) }
func (b *blockingIndex) Collect() ([]segdb.Segment, error)  { return b.hits, nil }
func (b *blockingIndex) Drop() error                        { return nil }

// TestAdmissionShedsWith429 saturates the gate and asserts excess
// requests shed immediately with 429 + Retry-After while the admitted
// ones complete with their answers.
func TestAdmissionShedsWith429(t *testing.T) {
	bix := &blockingIndex{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
		hits:    []segdb.Segment{segdb.NewSegment(7, 0, 0, 1, 1)},
	}
	srv := server.New(segdb.Synchronized(bix), nil, server.Config{
		MaxInflight: 2, RetryAfter: 3 * time.Second, DefaultTimeout: time.Minute,
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := func() (*http.Response, error) {
		return http.Post(hs.URL+"/v1/query", "application/json",
			bytes.NewReader([]byte(`{"x":0.5}`)))
	}

	// Fill both slots; wait until the queries are inside the index.
	type result struct {
		code  int
		count int
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := req()
			if err != nil {
				results <- result{code: -1}
				return
			}
			defer resp.Body.Close()
			var qr server.QueryResponse
			json.NewDecoder(resp.Body).Decode(&qr)
			results <- result{code: resp.StatusCode, count: qr.Count}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-bix.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("queries never reached the index")
		}
	}

	// The gate is full: the next request must shed, not queue.
	resp, err := req()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	resp.Body.Close()
	if got := srv.Gate().Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Releasing the index completes the admitted requests with answers.
	close(bix.release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK || r.count != 1 {
			t.Fatalf("admitted request: code %d count %d", r.code, r.count)
		}
	}
	if got := srv.Gate().Inflight(); got != 0 {
		t.Fatalf("inflight after completion = %d", got)
	}
}

// spinningIndex emits forever, so only context cancellation can end a
// query — the worst case for slot reclamation.
type spinningIndex struct{ blockingIndex }

func (s *spinningIndex) Query(q segdb.Query, emit func(segdb.Segment)) (segdb.QueryStats, error) {
	seg := segdb.NewSegment(1, 0, 0, 1, 1)
	for {
		emit(seg)
	}
}

// TestCancelledContextReleasesSlot asserts a query aborted by its
// deadline gives its admission slot back.
func TestCancelledContextReleasesSlot(t *testing.T) {
	srv := server.New(segdb.Synchronized(&spinningIndex{}), nil, server.Config{
		MaxInflight: 1, DefaultTimeout: time.Minute,
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"x":0.5,"omit_hits":true,"timeout_ms":50}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-exceeded query: HTTP %d, want 503", resp.StatusCode)
	}
	if got := srv.Gate().Inflight(); got != 0 {
		t.Fatalf("slot leaked: inflight = %d", got)
	}

	// The freed slot admits the next request (it will also time out, but
	// it must be admitted rather than shed with 429).
	resp, err = http.Post(hs.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"x":0.5,"omit_hits":true,"timeout_ms":50}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("slot was not released: follow-up request shed with 429")
	}
}

// TestDrainCompletesInflight starts a drain while a query is in flight:
// the query's answers must still be delivered, new work must be rejected
// with 503, and Drain must return once the query finishes.
func TestDrainCompletesInflight(t *testing.T) {
	bix := &blockingIndex{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
		hits:    []segdb.Segment{segdb.NewSegment(1, 0, 0, 1, 1), segdb.NewSegment(2, 0, 1, 1, 2)},
	}
	srv := server.New(segdb.Synchronized(bix), nil, server.Config{
		MaxInflight: 4, DefaultTimeout: time.Minute,
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightCode, inflightCount int
	go func() {
		defer wg.Done()
		resp, err := http.Post(hs.URL+"/v1/query", "application/json",
			bytes.NewReader([]byte(`{"x":0.5}`)))
		if err != nil {
			inflightCode = -1
			return
		}
		defer resp.Body.Close()
		var qr server.QueryResponse
		json.NewDecoder(resp.Body).Decode(&qr)
		inflightCode, inflightCount = resp.StatusCode, qr.Count
	}()
	<-bix.entered

	srv.BeginDrain()

	// New queries are rejected while the old one is still running.
	resp, err := http.Post(hs.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"x":0.5}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection carries no Retry-After")
	}

	// healthz flips to draining.
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: HTTP %d, want 503", hresp.StatusCode)
	}

	// Drain blocks until the in-flight query finishes...
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a query still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// ...and the query's answers are not dropped.
	close(bix.release)
	wg.Wait()
	if inflightCode != http.StatusOK || inflightCount != 2 {
		t.Fatalf("in-flight query during drain: code %d count %d, want 200/2", inflightCode, inflightCount)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestStatszShape exercises /statsz over real traffic: request counts,
// latency histograms and per-shard store stats must be present and
// internally consistent, and the document must round-trip JSON into
// server.Snapshot (the contract segload relies on).
func TestStatszShape(t *testing.T) {
	hs, srv, segs := testServer(t, server.Config{MaxInflight: 8})
	box := workload.BBox(segs)
	rng := rand.New(rand.NewSource(5))
	queries := workload.RandomVS(rng, 40, box, 3)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := i; j < len(queries); j += 4 {
				q := queries[j]
				postQuery(t, hs.URL, server.QueryRequest{
					QuerySpec: server.QuerySpec{X: q.X, YLo: ptr(q.YLo), YHi: ptr(q.YHi)},
				})
			}
		}(i)
	}
	wg.Wait()

	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	q := snap.Endpoints["query"]
	if q.Requests != int64(len(queries)) {
		t.Fatalf("query requests = %d, want %d", q.Requests, len(queries))
	}
	if q.Latency.Count != int64(len(queries)) {
		t.Fatalf("latency count = %d, want %d", q.Latency.Count, len(queries))
	}
	var inBuckets int64
	for _, c := range q.Latency.Buckets {
		inBuckets += c
	}
	if inBuckets != q.Latency.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, q.Latency.Count)
	}
	if snap.Segments != len(segs) {
		t.Fatalf("segments = %d, want %d", snap.Segments, len(segs))
	}
	if len(snap.Store.Shards) == 0 || snap.Store.PagesInUse == 0 {
		t.Fatalf("store stats missing: %+v", snap.Store)
	}
	var reads, hits int64
	for _, sh := range snap.Store.Shards {
		reads += sh.Reads
		hits += sh.CacheHits
	}
	if reads != snap.Store.Total.Reads || hits != snap.Store.Total.CacheHits {
		t.Fatalf("shard stats do not sum to totals: %d/%d vs %+v", reads, hits, snap.Store.Total)
	}
	if snap.Admission.MaxInflight != 8 || snap.Admission.Admitted != int64(len(queries)) {
		t.Fatalf("admission stats: %+v", snap.Admission)
	}
	// Programmatic and HTTP snapshots agree on the counters.
	if ps := srv.Snapshot(); ps.Endpoints["query"].Requests != q.Requests {
		t.Fatalf("programmatic snapshot disagrees: %d vs %d",
			ps.Endpoints["query"].Requests, q.Requests)
	}
}

// TestBadRequests covers the 4xx surface.
func TestBadRequests(t *testing.T) {
	hs, _, _ := testServer(t, server.Config{MaxBatch: 4})
	resp, err := http.Post(hs.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{bad json`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: HTTP %d, want 400", resp.StatusCode)
	}

	over := server.QueryRequest{Queries: make([]server.QuerySpec, 5)}
	body, _ := json.Marshal(&over)
	resp, err = http.Post(hs.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: HTTP %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(hs.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET query: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestServeStatszInvariantUnderMalformedTraffic is the regression test
// for decode failures skewing the metrics: malformed bodies used to
// count an error on the query endpoint without counting a request, so
// errors could exceed requests. They now land on the dedicated "parse"
// row as one request plus one error, and every endpoint row keeps the
// errors ≤ requests invariant under mixed good/bad traffic.
func TestServeStatszInvariantUnderMalformedTraffic(t *testing.T) {
	hs, srv, segs := testServer(t, server.Config{})
	box := workload.BBox(segs)

	const bad = 7
	garbage := [][]byte{
		[]byte(`{bad json`),
		[]byte(`[1,2,3`),
		[]byte(`{"x": "not a number"}`),
		[]byte(`"just a string`),
		[]byte(``),
		[]byte(`{"queries": [{"x": {}}]}`),
		[]byte(`{{{`),
	}
	for i := 0; i < bad; i++ {
		resp, err := http.Post(hs.URL+"/v1/query", "application/json",
			bytes.NewReader(garbage[i%len(garbage)]))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed body %d: HTTP %d, want 400", i, resp.StatusCode)
		}
	}
	const good = 5
	for i := 0; i < good; i++ {
		postQuery(t, hs.URL, server.QueryRequest{
			QuerySpec: server.QuerySpec{X: box.MinX + float64(i)},
		})
	}

	snap := srv.Snapshot()
	for name, ep := range snap.Endpoints {
		if ep.Errors > ep.Requests {
			t.Fatalf("endpoint %q: errors %d > requests %d", name, ep.Errors, ep.Requests)
		}
	}
	p := snap.Endpoints["parse"]
	if p.Requests != bad || p.Errors != bad {
		t.Fatalf("parse row = %d requests / %d errors, want %d / %d",
			p.Requests, p.Errors, bad, bad)
	}
	q := snap.Endpoints["query"]
	if q.Requests != good || q.Errors != 0 {
		t.Fatalf("query row = %d requests / %d errors, want %d / 0",
			q.Requests, q.Errors, good)
	}
}

// TestServeIOAttribution: real traffic over SynchronizedOn must surface
// per-endpoint I/O — totals, ratio, and a pages-read histogram whose
// count matches the request count — and the single and batch endpoints
// account independently.
func TestServeIOAttribution(t *testing.T) {
	hs, srv, segs := testServer(t, server.Config{})
	box := workload.BBox(segs)
	rng := rand.New(rand.NewSource(8))
	queries := workload.RandomVS(rng, 20, box, 3)

	for _, q := range queries {
		postQuery(t, hs.URL, server.QueryRequest{
			QuerySpec: server.QuerySpec{X: q.X, YLo: ptr(q.YLo), YHi: ptr(q.YHi)},
		})
	}
	var batch server.QueryRequest
	for _, q := range queries {
		batch.Queries = append(batch.Queries, server.QuerySpec{X: q.X, YLo: ptr(q.YLo), YHi: ptr(q.YHi)})
	}
	batch.Parallelism = 4
	if resp, _ := postQuery(t, hs.URL, batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}

	snap := srv.Snapshot()
	for _, name := range []string{"query", "batch"} {
		ep := snap.Endpoints[name]
		if ep.IOReads+ep.IOHits == 0 {
			t.Fatalf("%s endpoint attributed no I/O over %d requests", name, ep.Requests)
		}
		if ep.PagesRead.Count != ep.Requests {
			t.Fatalf("%s pages-read histogram count %d != requests %d",
				name, ep.PagesRead.Count, ep.Requests)
		}
		if ep.PoolHits.Count != ep.Requests {
			t.Fatalf("%s pool-hits histogram count %d != requests %d",
				name, ep.PoolHits.Count, ep.Requests)
		}
		if ep.PagesRead.Sum != ep.IOReads || ep.PoolHits.Sum != ep.IOHits {
			t.Fatalf("%s histogram sums (%d reads, %d hits) != totals (%d, %d)",
				name, ep.PagesRead.Sum, ep.PoolHits.Sum, ep.IOReads, ep.IOHits)
		}
		if ep.HitRatio < 0 || ep.HitRatio > 1 {
			t.Fatalf("%s hit ratio %f out of range", name, ep.HitRatio)
		}
	}
	// The single queries ran serially, so their windows are exact and can
	// never exceed what the store itself observed. (Batch windows may
	// over-count under concurrency — see the pager package comment.)
	if qe := snap.Endpoints["query"]; qe.IOReads > snap.Store.Total.Reads {
		t.Fatalf("attributed reads %d exceed store total %d", qe.IOReads, snap.Store.Total.Reads)
	}
}

// TestGate unit-tests the semaphore directly.
func TestGate(t *testing.T) {
	g := server.NewGate(2)
	if err := g.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit(); err != server.ErrSaturated {
		t.Fatalf("third Admit = %v, want ErrSaturated", err)
	}
	g.Release()
	if err := g.Admit(); err != nil {
		t.Fatalf("Admit after Release = %v", err)
	}
	g.StartDrain()
	if err := g.Admit(); err != server.ErrDraining {
		t.Fatalf("Admit while draining = %v, want ErrDraining", err)
	}
	select {
	case <-g.Drained():
		t.Fatal("Drained closed with requests in flight")
	default:
	}
	g.Release()
	g.Release()
	select {
	case <-g.Drained():
	case <-time.After(time.Second):
		t.Fatal("Drained never closed")
	}
	st := g.Stats()
	if st.Shed != 1 || st.Rejected != 1 || st.Admitted != 3 || st.Inflight != 0 || !st.Draining {
		t.Fatalf("gate stats: %+v", st)
	}
}

// TestGateConcurrent hammers the gate from many goroutines under -race:
// inflight must never exceed capacity and every admit must be released.
func TestGateConcurrent(t *testing.T) {
	const cap = 8
	g := server.NewGate(cap)
	var over, admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g.Admit() != nil {
					continue
				}
				mu.Lock()
				admitted++
				if g.Inflight() > cap {
					over++
				}
				mu.Unlock()
				g.Release()
			}
		}()
	}
	wg.Wait()
	if over != 0 {
		t.Fatalf("inflight exceeded capacity %d times", over)
	}
	if g.Inflight() != 0 {
		t.Fatalf("inflight = %d after all releases", g.Inflight())
	}
	if st := g.Stats(); st.Admitted != admitted {
		t.Fatalf("admitted counter %d != observed %d", st.Admitted, admitted)
	}
}

// faultServer serves an index whose store sits on a fault-injection
// device with a zero-page cache, so injected disk faults reach every
// query instead of being masked by the pool.
func faultServer(t *testing.T, cfg server.Config) (*httptest.Server, *faultdev.Device) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	segs := workload.Grid(rng, 10, 10, 0.9, 0.2)
	pageSize := segdb.PageSizeFor(16)
	dev := faultdev.New(pager.NewMemDevice(pageSize), 1)
	st, err := pager.Open(dev, pageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := segdb.CreateSolution2(st, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	box := workload.BBox(segs)
	cfg.DeepProbeX = (box.MinX + box.MaxX) / 2
	srv := server.New(segdb.Synchronized(ix), st, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, dev
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestHealthzDeepCheck: /healthz stays a cheap liveness probe, but
// ?deep=1 drives a real stabbing query through the store — a dying disk
// flips deep health to 500 while liveness still answers 200, which is
// exactly the signal an orchestrator needs to stop routing reads to a
// replica whose file has rotted underneath it.
func TestHealthzDeepCheck(t *testing.T) {
	hs, dev := faultServer(t, server.Config{})

	if got := getStatus(t, hs.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthy /healthz = %d", got)
	}
	if got := getStatus(t, hs.URL+"/healthz?deep=1"); got != http.StatusOK {
		t.Fatalf("healthy /healthz?deep=1 = %d", got)
	}

	dev.SetBudget(0) // the disk dies
	if got := getStatus(t, hs.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("liveness must survive a dead disk, got %d", got)
	}
	if got := getStatus(t, hs.URL+"/healthz?deep=1"); got != http.StatusInternalServerError {
		t.Fatalf("deep check on dead disk = %d, want 500", got)
	}
}

// TestQueryOnFaultyStore: single queries surface injected device faults
// as 500s; batch queries degrade per-query via the error field instead of
// failing the whole request.
func TestQueryOnFaultyStore(t *testing.T) {
	hs, dev := faultServer(t, server.Config{})
	dev.SetBudget(0)

	resp, _ := postQuery(t, hs.URL, server.QueryRequest{QuerySpec: server.QuerySpec{X: 5}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("single query on dead disk = %d, want 500", resp.StatusCode)
	}

	resp, qr := postQuery(t, hs.URL, server.QueryRequest{Queries: []server.QuerySpec{{X: 5}, {X: 6}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch on dead disk = %d, want 200 with per-query errors", resp.StatusCode)
	}
	for i, r := range qr.Results {
		if r.Error == "" {
			t.Fatalf("batch result %d reported no error on a dead disk", i)
		}
	}
}
