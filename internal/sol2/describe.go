package sol2

import (
	"fmt"
	"strings"

	"segdb/internal/pager"
)

// Description summarises the structure for operators: how deep the first
// level is, where segments live, and how large the second-level
// structures are. It is computed by a full traversal (O(n) I/Os), so it
// is a diagnostic, not a per-query facility.
type Description struct {
	Segments        int
	FirstLevelNodes int
	LeafChains      int
	Height          int
	SegsInLeaves    int
	SegsInC         int // lying on slab boundaries
	SegsInShort     int // short-fragment tree entries (L_i + R_i, with double counting)
	GFragments      int // long fragments (counted once per node's G)
	GListEntries    int // multislab list entries incl. cascading copies
}

func (d Description) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "solution 2: %d segments, %d internal nodes + %d leaf chains, height %d\n",
		d.Segments, d.FirstLevelNodes, d.LeafChains, d.Height)
	fmt.Fprintf(&b, "  leaves: %d segs; boundaries: %d collinear; short trees: %d entries; G: %d fragments in %d list entries",
		d.SegsInLeaves, d.SegsInC, d.SegsInShort, d.GFragments, d.GListEntries)
	return b.String()
}

// Describe traverses the index and returns its structural summary.
func (ix *Index) Describe() (Description, error) {
	d := Description{Segments: ix.length}
	err := ix.describeRec(ix.root, 1, &d)
	return d, err
}

func (ix *Index) describeRec(id pager.PageID, depth int, d *Description) error {
	if id == pager.InvalidPage {
		return nil
	}
	if depth > d.Height {
		d.Height = depth
	}
	n, leaf, err := ix.readNode(id)
	if err != nil {
		return err
	}
	if leaf != nil {
		d.LeafChains++
		d.SegsInLeaves += len(leaf)
		return nil
	}
	d.FirstLevelNodes++
	for i := range n.bounds {
		if n.c[i] != nil {
			d.SegsInC += n.c[i].Len()
		}
		d.SegsInShort += n.l[i].Len() + n.r[i].Len()
	}
	d.GFragments += n.g.Len()
	entries, err := n.g.ListEntries()
	if err != nil {
		return err
	}
	d.GListEntries += entries
	for _, ch := range n.children {
		if err := ix.describeRec(ch, depth+1, d); err != nil {
			return err
		}
	}
	return nil
}
