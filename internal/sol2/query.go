package sol2

import (
	"math"
	"sort"

	"segdb/internal/geom"
	"segdb/internal/intervaltree"
	"segdb/internal/multislab"
	"segdb/internal/pager"
)

// Stats reports per-query work.
type Stats struct {
	FirstLevelNodes int
	Reported        int
	G               multislab.Stats // aggregated over visited nodes
}

// Query reports every stored segment intersected by the vertical query
// segment q, exactly once (paper, Section 4.2/4.3). At each first-level
// node it searches the two facing short-fragment trees and G, then
// descends into the slab containing q.X; a query exactly on a boundary
// additionally searches C_i and both its side trees, deduplicates (the
// three fragment classes overlap only there) and stops.
func (ix *Index) Query(q geom.VQuery, emit func(geom.Segment)) (Stats, error) {
	var stats Stats
	count := func(s geom.Segment) {
		stats.Reported++
		emit(s)
	}
	id := ix.root
	for id != pager.InvalidPage {
		n, leaf, err := ix.readNode(id)
		if err != nil {
			return stats, err
		}
		stats.FirstLevelNodes++
		if leaf != nil {
			for _, s := range leaf {
				if q.Hits(s) {
					count(s)
				}
			}
			return stats, nil
		}

		if bi := boundaryIndexOf(n.bounds, q.X); bi > 0 {
			seen := map[uint64]bool{}
			dedup := func(s geom.Segment) {
				if !seen[s.ID] {
					seen[s.ID] = true
					count(s)
				}
			}
			if n.c[bi-1] != nil {
				err := n.c[bi-1].Intersect(q.YLo, q.YHi, func(it intervaltree.Item) { dedup(it.Seg) })
				if err != nil {
					return stats, err
				}
			}
			if _, err := n.l[bi-1].Query(q, dedup); err != nil {
				return stats, err
			}
			if _, err := n.r[bi-1].Query(q, dedup); err != nil {
				return stats, err
			}
			gs, err := n.g.Query(q, ix.UseBridges, dedup)
			if err != nil {
				return stats, err
			}
			stats.G = addG(stats.G, gs)
			return stats, nil
		}

		k := slabOf(n.bounds, q.X)
		if k >= 1 {
			if _, err := n.r[k-1].Query(q, count); err != nil {
				return stats, err
			}
		}
		if k < len(n.bounds) {
			if _, err := n.l[k].Query(q, count); err != nil {
				return stats, err
			}
		}
		gs, err := n.g.Query(q, ix.UseBridges, count)
		if err != nil {
			return stats, err
		}
		stats.G = addG(stats.G, gs)
		id = n.children[k]
	}
	return stats, nil
}

func addG(a, b multislab.Stats) multislab.Stats {
	a.ListsSearched += b.ListsSearched
	a.BridgeJumps += b.BridgeJumps
	a.Fallbacks += b.Fallbacks
	a.Reported += b.Reported
	return a
}

// boundaryIndexOf returns the 1-based boundary equal to x, or 0.
func boundaryIndexOf(bounds []float64, x float64) int {
	k := sort.SearchFloat64s(bounds, x)
	if k < len(bounds) && bounds[k] == x {
		return k + 1
	}
	return 0
}

// CollectQuery returns the query result as a slice.
func (ix *Index) CollectQuery(q geom.VQuery) ([]geom.Segment, error) {
	var out []geom.Segment
	_, err := ix.Query(q, func(s geom.Segment) { out = append(out, s) })
	return out, err
}

var (
	minusInf = math.Inf(-1)
	plusInf  = math.Inf(1)
)

// Collect returns every stored segment, deduplicating multi-structure
// representation.
func (ix *Index) Collect() ([]geom.Segment, error) {
	seen := make(map[uint64]bool, ix.length)
	var out []geom.Segment
	err := ix.collectRec(ix.root, seen, &out)
	return out, err
}

func (ix *Index) collectRec(id pager.PageID, seen map[uint64]bool, out *[]geom.Segment) error {
	if id == pager.InvalidPage {
		return nil
	}
	n, leaf, err := ix.readNode(id)
	if err != nil {
		return err
	}
	add := func(s geom.Segment) {
		if !seen[s.ID] {
			seen[s.ID] = true
			*out = append(*out, s)
		}
	}
	if leaf != nil {
		for _, s := range leaf {
			add(s)
		}
		return nil
	}
	if err := ix.collectNode(n, add); err != nil {
		return err
	}
	for _, ch := range n.children {
		if err := ix.collectRec(ch, seen, out); err != nil {
			return err
		}
	}
	return nil
}

func (ix *Index) collectNode(n *inode, add func(geom.Segment)) error {
	for i := range n.bounds {
		if n.c[i] != nil {
			err := n.c[i].Intersect(minusInf, plusInf, func(it intervaltree.Item) { add(it.Seg) })
			if err != nil {
				return err
			}
		}
		for _, t := range []interface {
			Collect() ([]geom.Segment, error)
		}{n.l[i], n.r[i]} {
			segs, err := t.Collect()
			if err != nil {
				return err
			}
			for _, s := range segs {
				add(s)
			}
		}
	}
	segs, err := n.g.Collect()
	if err != nil {
		return err
	}
	for _, s := range segs {
		add(s)
	}
	return nil
}

// Drop frees every page of the index.
func (ix *Index) Drop() error {
	err := ix.dropRec(ix.root)
	ix.root = pager.InvalidPage
	ix.length = 0
	return err
}

func (ix *Index) dropRec(id pager.PageID) error {
	if id == pager.InvalidPage {
		return nil
	}
	n, _, err := ix.readNode(id)
	if err != nil {
		return err
	}
	if n == nil {
		// Leaf chain: free every page.
		pages, err := ix.leafChainPages(id)
		if err != nil {
			return err
		}
		for _, p := range pages {
			ix.st.Free(p)
		}
		return nil
	}
	{
		for i := range n.bounds {
			if n.c[i] != nil {
				if err := n.c[i].Drop(); err != nil {
					return err
				}
			}
			if err := n.l[i].Drop(); err != nil {
				return err
			}
			if err := n.r[i].Drop(); err != nil {
				return err
			}
		}
		if err := n.g.Drop(); err != nil {
			return err
		}
		for _, ch := range n.children {
			if err := ix.dropRec(ch); err != nil {
				return err
			}
		}
	}
	ix.st.Free(id)
	return nil
}
