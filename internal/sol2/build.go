package sol2

import (
	"fmt"
	"sort"

	"segdb/internal/bpst"
	"segdb/internal/geom"
	"segdb/internal/intervaltree"
	"segdb/internal/multislab"
	"segdb/internal/pager"
)

// Build bulk-loads a Solution-2 index over an NCT segment set. Segment
// IDs must be unique and non-zero; degenerate segments are rejected.
func Build(st *pager.Store, cfg Config, segs []geom.Segment) (*Index, error) {
	cfg, err := cfg.withDefaults(st.PageSize())
	if err != nil {
		return nil, err
	}
	ix := &Index{st: st, cfg: cfg, cCfg: intervaltree.DefaultConfig(cfg.B), UseBridges: true}
	if sz := nodePageSize(cfg.branching()); sz > st.PageSize() {
		return nil, fmt.Errorf("sol2: branching %d needs %d-byte pages, have %d",
			cfg.branching(), sz, st.PageSize())
	}
	if err := checkSegs(segs); err != nil {
		return nil, err
	}
	root, err := ix.buildRec(segs)
	if err != nil {
		return nil, err
	}
	ix.root = root
	ix.length = len(segs)
	return ix, nil
}

func checkSegs(segs []geom.Segment) error {
	seen := make(map[uint64]bool, len(segs))
	for _, s := range segs {
		if s.ID == 0 {
			return fmt.Errorf("sol2: segment %v has zero ID", s)
		}
		if seen[s.ID] {
			return fmt.Errorf("sol2: duplicate segment ID %d", s.ID)
		}
		seen[s.ID] = true
		if s.IsPoint() {
			return fmt.Errorf("sol2: degenerate segment %v", s)
		}
	}
	return nil
}

// buildRec builds the first-level subtree for segs and returns its page.
func (ix *Index) buildRec(segs []geom.Segment) (pager.PageID, error) {
	if len(segs) == 0 {
		return pager.InvalidPage, nil
	}
	if len(segs) <= ix.leafCutoff() {
		return ix.writeLeafChain(segs, nil)
	}
	// Adaptive branching: children should hold several blocks each, or
	// the slabs shred the set across near-empty pages and tiny lists.
	b := ix.cfg.branching()
	if small := len(segs) / ix.leafCutoff(); small < b {
		b = small
	}
	if b < 2 {
		b = 2
	}
	return ix.buildNode(segs, chooseBounds(segs, b))
}

// buildNode materialises one internal node and its subtrees.
func (ix *Index) buildNode(segs []geom.Segment, bounds []float64) (pager.PageID, error) {
	b := len(bounds)
	onLine := make([][]geom.Segment, b)
	lList := make([][]geom.Segment, b)
	rList := make([][]geom.Segment, b)
	var gFrags []multislab.Frag
	slabs := make([][]geom.Segment, b+1)

	for _, s := range segs {
		if bi := onBoundary(bounds, s); bi > 0 {
			onLine[bi-1] = append(onLine[bi-1], s)
			continue
		}
		i, j, ok := crossRange(bounds, s.MinX(), s.MaxX())
		if !ok {
			k := slabOf(bounds, s.MinX())
			slabs[k] = append(slabs[k], s)
			continue
		}
		// Short fragments (paper, Fig. 6): a left stub left of s_i, a
		// right stub right of s_j; the central part, when it spans at
		// least one slab (j > i), goes to G.
		if s.MinX() < bounds[i-1] {
			lList[i-1] = append(lList[i-1], s)
		}
		if s.MaxX() > bounds[j-1] {
			rList[j-1] = append(rList[j-1], s)
		}
		if j > i {
			gFrags = append(gFrags, multislab.Frag{Seg: s, I: i, J: j})
		}
	}

	n := &inode{
		bounds:   bounds,
		children: make([]pager.PageID, b+1),
		weight:   make([]int, b+1),
		built:    make([]int, b+1),
		c:        make([]*intervaltree.Tree, b),
		l:        make([]*bpst.Tree, b),
		r:        make([]*bpst.Tree, b),
	}
	var err error
	for i := 0; i < b; i++ {
		if len(onLine[i]) > 0 { // C_i is lazy: most boundaries carry no collinear segments
			items := make([]intervaltree.Item, len(onLine[i]))
			for k, s := range onLine[i] {
				items[k] = cItem(s)
			}
			if n.c[i], err = intervaltree.Build(ix.st, ix.cCfg, items); err != nil {
				return pager.InvalidPage, err
			}
		}
		if n.l[i], err = bpst.Build(ix.st, bounds[i], geom.SideLeft, lList[i]); err != nil {
			return pager.InvalidPage, err
		}
		if n.r[i], err = bpst.Build(ix.st, bounds[i], geom.SideRight, rList[i]); err != nil {
			return pager.InvalidPage, err
		}
	}
	if n.g, err = multislab.BuildG(ix.st, bounds, ix.cfg.D, gFrags); err != nil {
		return pager.InvalidPage, err
	}
	for k := 0; k <= b; k++ {
		if n.children[k], err = ix.buildRec(slabs[k]); err != nil {
			return pager.InvalidPage, err
		}
		n.weight[k] = len(slabs[k])
		n.built[k] = len(slabs[k])
	}
	id := ix.st.Alloc()
	return id, ix.writeInternal(id, n)
}

// chooseBounds picks up to b distinct boundary values at endpoint
// quantiles: every boundary is an endpoint, so at least one segment meets
// it and recursion strictly shrinks.
func chooseBounds(segs []geom.Segment, b int) []float64 {
	eps := make([]float64, 0, 2*len(segs))
	for _, s := range segs {
		eps = append(eps, s.A.X, s.B.X)
	}
	sort.Float64s(eps)
	var bounds []float64
	for i := 1; i <= b; i++ {
		idx := i * (len(eps) - 1) / (b + 1)
		v := eps[idx]
		if len(bounds) == 0 || bounds[len(bounds)-1] != v {
			bounds = append(bounds, v)
		}
	}
	if len(bounds) == 0 {
		bounds = append(bounds, eps[len(eps)/2])
	}
	// The G structure needs at least two boundaries; widen degenerate
	// cases with the extreme endpoints.
	if len(bounds) == 1 {
		if eps[0] != bounds[0] {
			bounds = append([]float64{eps[0]}, bounds...)
		} else if eps[len(eps)-1] != bounds[0] {
			bounds = append(bounds, eps[len(eps)-1])
		} else {
			// All endpoints identical: nothing can avoid this boundary,
			// so a second synthetic one is safe.
			bounds = append(bounds, bounds[0]+1)
		}
	}
	return bounds
}

// onBoundary returns the 1-based index of the boundary the segment lies
// on (vertical and collinear), or 0.
func onBoundary(bounds []float64, s geom.Segment) int {
	if !s.IsVertical() {
		return 0
	}
	k := sort.SearchFloat64s(bounds, s.A.X)
	if k < len(bounds) && bounds[k] == s.A.X {
		return k + 1
	}
	return 0
}

// crossRange returns the 1-based leftmost and rightmost boundaries crossed
// by [lo, hi], or ok = false.
func crossRange(bounds []float64, lo, hi float64) (i, j int, ok bool) {
	a := sort.SearchFloat64s(bounds, lo)
	if a == len(bounds) || bounds[a] > hi {
		return 0, 0, false
	}
	b := sort.Search(len(bounds), func(k int) bool { return bounds[k] > hi }) - 1
	return a + 1, b + 1, true
}

// slabOf returns the child slab 0..b containing x (x not on a boundary).
func slabOf(bounds []float64, x float64) int {
	return sort.SearchFloat64s(bounds, x)
}
