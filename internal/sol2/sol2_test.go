package sol2

import (
	"math"
	"math/rand"
	"testing"

	"segdb/internal/geom"
	"segdb/internal/pager"
	"segdb/internal/workload"
)

const testPageSize = 64 + 48*32 // B up to 32, b = 8

func newStore() *pager.Store { return pager.MustOpenMem(testPageSize, 64) }

func sameSet(t *testing.T, got, want []geom.Segment, label string) {
	t.Helper()
	seen := map[uint64]bool{}
	wantIDs := map[uint64]geom.Segment{}
	for _, s := range want {
		wantIDs[s.ID] = s
	}
	for _, s := range got {
		if seen[s.ID] {
			t.Fatalf("%s: duplicate id %d", label, s.ID)
		}
		seen[s.ID] = true
		w, ok := wantIDs[s.ID]
		if !ok {
			t.Fatalf("%s: spurious id %d (%v)", label, s.ID, s)
		}
		if s != w {
			t.Fatalf("%s: id %d geometry %v, want %v", label, s.ID, s, w)
		}
	}
	if len(seen) != len(wantIDs) {
		t.Fatalf("%s: got %d, want %d", label, len(seen), len(wantIDs))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Build(newStore(), Config{B: 2}, nil); err == nil {
		t.Error("B=2 accepted")
	}
	if _, err := Build(newStore(), Config{B: 100000}, nil); err == nil {
		t.Error("oversized B accepted")
	}
	if _, err := Build(newStore(), Config{D: 1}, nil); err == nil {
		t.Error("D=1 accepted")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix, err := Build(newStore(), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.CollectQuery(geom.VSeg(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty index returned results")
	}
}

func TestQueryMatchesNaiveAllWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sets := map[string][]geom.Segment{
		"layers": workload.Layers(rng, 10, 60, 400),
		"grid":   workload.Grid(rng, 18, 18, 0.85, 0.2),
		"levels": workload.Levels(rng, 600, 300, 1.1), // heavy tail: long fragments
		"stacks": workload.Stacks(8, 30, 25),
	}
	for wname, segs := range sets {
		ix, err := Build(newStore(), Config{B: 32}, segs)
		if err != nil {
			t.Fatalf("%s: %v", wname, err)
		}
		box := workload.BBox(segs)
		queries := workload.RandomVS(rng, 150, box, (box.MaxY-box.MinY)/4)
		queries = append(queries, workload.RandomStabs(rng, 30, box)...)
		for _, useBridges := range []bool{true, false} {
			ix.UseBridges = useBridges
			for _, q := range queries {
				got, err := ix.CollectQuery(q)
				if err != nil {
					t.Fatalf("%s %v: %v", wname, q, err)
				}
				sameSet(t, got, q.FilterHits(segs), wname)
			}
		}
	}
}

func TestQueryOnBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	segs := workload.Levels(rng, 500, 200, 1.1)
	// Vertical on-boundary candidates: add verticals at segment endpoints'
	// x, in their own y band above everything.
	id := uint64(10000)
	for i := 0; i < 40; i++ {
		x := segs[i*7].A.X
		id++
		segs = append(segs, geom.Seg(id, x, 1000+float64(i)*20, x, 1010+float64(i)*20))
	}
	if err := geom.ValidateNCT(segs); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(newStore(), Config{B: 32}, segs)
	if err != nil {
		t.Fatal(err)
	}
	// Query exactly at endpoint x values: many coincide with first-level
	// boundaries (endpoint quantiles).
	for i := 0; i < len(segs); i += 5 {
		x := segs[i].A.X
		for _, q := range []geom.VQuery{
			geom.VSeg(x, segs[i].A.Y-5, segs[i].A.Y+5),
			geom.VLine(x),
		} {
			got, err := ix.CollectQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, got, q.FilterHits(segs), "boundary query")
		}
	}
}

func TestCollectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := workload.Levels(rng, 400, 250, 1.2)
	ix, err := Build(newStore(), Config{B: 32}, segs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, segs, "collect")
}

func TestInsertMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	segs := workload.Levels(rng, 500, 300, 1.15)
	ix, err := Build(newStore(), Config{B: 32}, segs[:100])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs[100:] {
		if err := ix.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(segs) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(segs))
	}
	box := workload.BBox(segs)
	for _, q := range workload.RandomVS(rng, 200, box, 30) {
		got, err := ix.CollectQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, got, q.FilterHits(segs), "grown")
	}
}

func TestInsertFromEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	segs := workload.Grid(rng, 12, 12, 0.9, 0.2)
	ix, err := Build(newStore(), Config{B: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := ix.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	box := workload.BBox(segs)
	for _, q := range workload.RandomVS(rng, 150, box, 3) {
		got, err := ix.CollectQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, got, q.FilterHits(segs), "from empty")
	}
}

// TestInsertOnBoundary inserts vertical segments landing exactly on
// first-level boundaries: the lazily-created C_i path.
func TestInsertOnBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	segs := workload.Levels(rng, 400, 200, 1.3) // y levels 0..399
	ix, err := Build(newStore(), Config{B: 32}, segs)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint x values are boundary candidates (endpoint quantiles).
	var verts []geom.Segment
	id := uint64(5000)
	for i := 0; i < 50; i++ {
		x := segs[i*7].A.X
		y := 500 + float64(i)*10 // above all levels: NCT by construction
		id++
		v := geom.Seg(id, x, y, x, y+4)
		verts = append(verts, v)
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	all := append(append([]geom.Segment{}, segs...), verts...)
	if err := geom.ValidateNCT(all); err != nil {
		t.Fatal(err)
	}
	for _, v := range verts {
		q := geom.VSeg(v.A.X, v.MinY()-1, v.MaxY()+1)
		got, err := ix.CollectQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, got, q.FilterHits(all), "on-boundary insert")
	}
	// Collect must see the vertical segments too.
	col, err := ix.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, col, all, "collect with C_i")
}

func TestDescribe(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segs := workload.WideLevels(rng, 2000, 500)
	ix, err := Build(newStore(), Config{B: 32}, segs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ix.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if d.Segments != 2000 {
		t.Fatalf("Segments = %d", d.Segments)
	}
	if d.Height < 1 || d.FirstLevelNodes < 1 {
		t.Fatalf("degenerate description: %+v", d)
	}
	// Accounting: every segment is in a leaf, on a boundary, or split
	// into short/long fragments (short counted once per side tree, long
	// once per allocation node) — the total must cover all segments.
	if d.SegsInLeaves+d.SegsInC+d.SegsInShort+d.GFragments < d.Segments {
		t.Fatalf("description misses segments: %+v", d)
	}
	if d.GListEntries < d.GFragments {
		t.Fatalf("list entries %d below fragment count %d", d.GListEntries, d.GFragments)
	}
	if s := d.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestDeleteUnsupported(t *testing.T) {
	ix, err := Build(newStore(), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(geom.Seg(1, 0, 0, 1, 1)); err != ErrUnsupported {
		t.Fatalf("Delete err = %v, want ErrUnsupported", err)
	}
}

func TestDropFreesPages(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	st := newStore()
	base := st.PagesInUse()
	ix, err := Build(st, Config{B: 32}, workload.Levels(rng, 400, 200, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Drop(); err != nil {
		t.Fatal(err)
	}
	if got := st.PagesInUse(); got != base {
		t.Fatalf("PagesInUse = %d, want %d", got, base)
	}
}

// TestSpaceNLogB validates Theorem 2(i): blocks grow like n·log2(B), i.e.
// pages per segment stay bounded as n grows.
func TestSpaceNLogB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var prev float64
	for _, n := range []int{1000, 4000} {
		st := pager.MustOpenMem(testPageSize, 0)
		segs := workload.Levels(rng, n, float64(n), 1.1)
		if _, err := Build(st, Config{B: 32}, segs); err != nil {
			t.Fatal(err)
		}
		perSeg := float64(st.PagesInUse()) / float64(n)
		if prev > 0 && perSeg > prev*1.6 {
			t.Fatalf("pages per segment grew %g → %g", prev, perSeg)
		}
		prev = perSeg
	}
}

// TestBridgesReduceWork is the E6-vs-E7 ablation in miniature.
func TestBridgesReduceWork(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	st := pager.MustOpenMem(testPageSize, 0)
	segs := workload.WideLevels(rng, 8000, 500) // long fragments dominate
	ix, err := Build(st, Config{B: 32}, segs)
	if err != nil {
		t.Fatal(err)
	}
	box := workload.BBox(segs)
	queries := workload.RandomVS(rng, 150, box, 40)
	run := func(useBridges bool) (int64, int) {
		ix.UseBridges = useBridges
		st.ResetStats()
		jumps := 0
		for _, q := range queries {
			stats, err := ix.Query(q, func(geom.Segment) {})
			if err != nil {
				t.Fatal(err)
			}
			jumps += stats.G.BridgeJumps
		}
		return st.Stats().Reads, jumps
	}
	without, j0 := run(false)
	with, j1 := run(true)
	if j0 != 0 {
		t.Fatalf("bridge jumps without bridges: %d", j0)
	}
	if j1 == 0 {
		t.Fatal("no bridge jumps with bridges enabled")
	}
	if with >= without {
		t.Fatalf("cascading did not reduce I/O: %d with vs %d without", with, without)
	}
}

// TestQueryCostShape validates the Theorem 2(ii) shape: far below a scan
// and consistent with polylog·log_B growth.
func TestQueryCostShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := pager.MustOpenMem(testPageSize, 0)
	segs := workload.Layers(rng, 100, 100, 2000)
	ix, err := Build(st, Config{B: 32}, segs)
	if err != nil {
		t.Fatal(err)
	}
	box := workload.BBox(segs)
	queries := workload.RandomVS(rng, 200, box, 5)
	st.ResetStats()
	totalT := 0
	for _, q := range queries {
		stats, err := ix.Query(q, func(geom.Segment) {})
		if err != nil {
			t.Fatal(err)
		}
		totalT += stats.Reported
	}
	reads := float64(st.Stats().Reads) / float64(len(queries))
	n := float64(len(segs)) / 32
	if reads > n/4 {
		t.Fatalf("avg %.1f reads/query is within 4× of a scan (%g pages)", reads, n)
	}
	logB := math.Log(n) / math.Log(8)
	bound := logB*(logB+math.Log2(32)+4)*4 + float64(totalT)/float64(len(queries))/32*4 + 8
	if reads > bound {
		t.Fatalf("avg %.1f reads/query, want ≤ %.1f", reads, bound)
	}
}
