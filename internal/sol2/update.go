package sol2

import (
	"fmt"

	"segdb/internal/geom"
	"segdb/internal/intervaltree"
	"segdb/internal/multislab"
	"segdb/internal/pager"
)

// Insert adds a segment (the structure is semi-dynamic, Section 4.3:
// insertions only). The segment must keep the database NCT; that
// precondition is the caller's contract. The first level rebalances by
// weight: a child subtree whose weight has doubled since it was last
// built is rebuilt, the substitution for the paper's weight-balanced
// B-tree recorded in DESIGN.md §5.
func (ix *Index) Insert(s geom.Segment) error {
	if s.ID == 0 || s.IsPoint() {
		return fmt.Errorf("sol2: %w %v", geom.ErrInvalidSegment, s)
	}
	newRoot, err := ix.insertRec(ix.root, s)
	if err != nil {
		return err
	}
	ix.root = newRoot
	ix.length++
	return nil
}

// ErrUnsupported reports an operation outside the paper's semi-dynamic
// model.
var ErrUnsupported = fmt.Errorf("sol2: deletion is unsupported (the paper's structure is semi-dynamic)")

// Delete always fails: Solution 2 supports insertions only, as in the
// paper. Use Solution 1 for fully dynamic workloads.
func (ix *Index) Delete(geom.Segment) (bool, error) { return false, ErrUnsupported }

func (ix *Index) insertRec(id pager.PageID, s geom.Segment) (pager.PageID, error) {
	if id == pager.InvalidPage {
		return ix.writeLeafChain([]geom.Segment{s}, nil)
	}
	n, leaf, err := ix.readNode(id)
	if err != nil {
		return id, err
	}
	if leaf != nil {
		// Collect the chain's pages for reuse, then rewrite or rebuild.
		pages, err := ix.leafChainPages(id)
		if err != nil {
			return id, err
		}
		leaf = append(leaf, s)
		if len(leaf) <= ix.leafCutoff() {
			return ix.writeLeafChain(leaf, pages)
		}
		for _, p := range pages {
			ix.st.Free(p)
		}
		return ix.buildRec(leaf)
	}

	if bi := onBoundary(n.bounds, s); bi > 0 {
		if n.c[bi-1] == nil {
			if n.c[bi-1], err = intervaltree.New(ix.st, ix.cCfg); err != nil {
				return id, err
			}
		}
		if err := n.c[bi-1].Insert(cItem(s)); err != nil {
			return id, err
		}
		return id, ix.writeInternal(id, n)
	}
	i, j, ok := crossRange(n.bounds, s.MinX(), s.MaxX())
	if ok {
		if s.MinX() < n.bounds[i-1] {
			if err := n.l[i-1].Insert(s); err != nil {
				return id, err
			}
		}
		if s.MaxX() > n.bounds[j-1] {
			if err := n.r[j-1].Insert(s); err != nil {
				return id, err
			}
		}
		if j > i {
			if err := n.g.Insert(multislab.Frag{Seg: s, I: i, J: j}); err != nil {
				return id, err
			}
		}
		return id, ix.writeInternal(id, n)
	}

	k := slabOf(n.bounds, s.MinX())
	if n.children[k], err = ix.insertRec(n.children[k], s); err != nil {
		return id, err
	}
	n.weight[k]++
	if n.weight[k] > 2*n.built[k]+ix.leafCap() {
		// Rebuild the overweight child subtree balanced.
		segs, err := ix.collectChild(n.children[k])
		if err != nil {
			return id, err
		}
		if err := ix.dropRec(n.children[k]); err != nil {
			return id, err
		}
		if n.children[k], err = ix.buildRec(segs); err != nil {
			return id, err
		}
		n.built[k] = n.weight[k]
	}
	return id, ix.writeInternal(id, n)
}

// leafChainPages lists the page IDs of a leaf chain starting at head.
func (ix *Index) leafChainPages(head pager.PageID) ([]pager.PageID, error) {
	var pages []pager.PageID
	for head != pager.InvalidPage {
		pages = append(pages, head)
		page, err := ix.st.Read(head)
		if err != nil {
			return nil, err
		}
		head = pager.NewBuf(page).Seek(4).Page()
	}
	return pages, nil
}

// collectChild gathers every segment of a subtree.
func (ix *Index) collectChild(id pager.PageID) ([]geom.Segment, error) {
	seen := map[uint64]bool{}
	var out []geom.Segment
	err := ix.collectRec(id, seen, &out)
	return out, err
}
