// Package sol2 implements the improved solution of Bertino, Catania and
// Shidlovsky (EDBT 1998), Section 4: the two-level structure whose first
// level is an external interval tree with branching b = B/4 and whose
// second level combines, per node, the interval trees C_i (segments lying
// on a boundary), the priority search trees L_i/R_i (short fragments), and
// the segment tree G over multislab lists with fractional cascading (long
// fragments).
//
// Cost profile (paper): O(n log2 B) blocks of storage; VS queries in
// O(log_B n (log_B n + log2 B + IL*(B)) + t) I/Os with cascading enabled
// (Theorem 2) and O(log_B n (log_B n log2 B + IL*(B)) + t) without
// (Lemma 4); insertions amortized O(log_B n + log2 B + log²_B n / B)
// (Theorem 2(iii)). The structure is semi-dynamic: the paper defines
// insertions only, and so does this implementation.
package sol2

import (
	"fmt"

	"segdb/internal/bpst"
	"segdb/internal/geom"
	"segdb/internal/intervaltree"
	"segdb/internal/multislab"
	"segdb/internal/pager"
	"segdb/internal/segrec"
)

// Config parameterises the structure.
type Config struct {
	// B is the block capacity in segments. Zero selects the page-size
	// maximum. The first-level branching is b = max(2, B/4) as in the
	// paper (Section 4.1).
	B int
	// D is the fractional-cascading bridge spacing (≥ 2); 0 selects 4.
	D int
}

func (c Config) withDefaults(pageSize int) (Config, error) {
	maxB := (pageSize - leafHeader) / segrec.Size
	if c.B == 0 {
		c.B = maxB
	}
	if c.D == 0 {
		c.D = 4
	}
	if c.B < 4 || c.B > maxB {
		return c, fmt.Errorf("sol2: B=%d outside [4, %d]", c.B, maxB)
	}
	if c.D < 2 {
		return c, fmt.Errorf("sol2: D=%d < 2", c.D)
	}
	return c, nil
}

// branching returns the first-level branching factor b.
func (c Config) branching() int {
	b := c.B / 4
	if b < 2 {
		b = 2
	}
	if b > 250 {
		b = 250
	}
	return b
}

// Index is a Solution-2 two-level structure over a pager.Store.
type Index struct {
	st     *pager.Store
	cfg    Config
	cCfg   intervaltree.Config
	root   pager.PageID
	length int
	// UseBridges selects Theorem 2 (true, default) or the Lemma 4
	// configuration without fractional cascading, for the ablation.
	UseBridges bool
}

// Len returns the number of stored segments.
func (ix *Index) Len() int { return ix.length }

// Root returns the first-level root page: together with Config and Len it
// is the index's persistent identity (stored in a catalog page by the
// public package).
func (ix *Index) Root() pager.PageID { return ix.root }

// Config returns the configuration the index was built with.
func (ix *Index) Config() Config { return ix.cfg }

// Attach reconstructs an index handle persisted via Root/Config/Len. The
// configuration must match the one the index was built with.
func Attach(st *pager.Store, cfg Config, root pager.PageID, length int) (*Index, error) {
	cfg, err := cfg.withDefaults(st.PageSize())
	if err != nil {
		return nil, err
	}
	return &Index{
		st: st, cfg: cfg, cCfg: intervaltree.DefaultConfig(cfg.B),
		root: root, length: length, UseBridges: true,
	}, nil
}

// --- node pages -----------------------------------------------------------

// internal: type u8 | pad u8 | b u8 | pad u8 |
//
//	per child (b+1): weight u32, builtWeight u32 |
//	bounds b×8 | children (b+1)×4 |
//	per boundary: C handle (17) | L root,len,since (12) | R (12) |
//	G directory (multislab.DirSize(b))
//
// leaf:     type u8 | pad u8 | count u16 | next u32 | segs ...
//
//	(leaves are short chains of pages: splitting a set smaller
//	than a few blocks into b slabs would scatter it across
//	near-empty pages and lists)
const (
	typeInternal = 1
	typeLeaf     = 2
	leafHeader   = 8
)

// nodePageSize returns the bytes an internal node needs for b boundaries.
func nodePageSize(b int) int {
	return 4 + (b+1)*8 + b*8 + (b+1)*4 + b*(intervaltree.HandleSize+24) + multislab.DirSize(b)
}

type inode struct {
	bounds   []float64
	children []pager.PageID
	weight   []int // per child slab
	built    []int // child weight at its last (re)build
	c        []*intervaltree.Tree
	l, r     []*bpst.Tree
	g        *multislab.G
}

func (ix *Index) leafCap() int {
	cap := (ix.st.PageSize() - leafHeader) / segrec.Size
	if cap > ix.cfg.B {
		cap = ix.cfg.B
	}
	return cap
}

// leafCutoff is the largest set stored as a leaf chain rather than an
// internal node: a chain of up to 4 blocks costs no more to scan than one
// more level of slab routing would.
func (ix *Index) leafCutoff() int { return 4 * ix.leafCap() }

func (ix *Index) writeInternal(id pager.PageID, n *inode) error {
	page := make([]byte, ix.st.PageSize())
	c := pager.NewBuf(page)
	b := len(n.bounds)
	c.PutU8(typeInternal)
	c.PutU8(0)
	c.PutU8(uint8(b))
	c.PutU8(0)
	for k := 0; k <= b; k++ {
		c.PutU32(uint32(n.weight[k]))
		c.PutU32(uint32(n.built[k]))
	}
	for _, s := range n.bounds {
		c.PutF64(s)
	}
	for _, ch := range n.children {
		c.PutPage(ch)
	}
	for i := 0; i < b; i++ {
		n.c[i].PutHandle(c)
		putBPST(c, n.l[i])
		putBPST(c, n.r[i])
	}
	n.g.EncodeTo(c)
	return ix.st.Write(id, page)
}

func putBPST(c *pager.Buf, t *bpst.Tree) {
	root, length, since := t.Handle()
	c.PutPage(root)
	c.PutU32(uint32(length))
	c.PutU32(uint32(since))
}

func (ix *Index) getBPST(c *pager.Buf, baseX float64, side geom.Side) *bpst.Tree {
	root := c.Page()
	length := int(c.U32())
	since := int(c.U32())
	return bpst.Attach(ix.st, baseX, side, root, length, since)
}

// writeLeafChain stores segs as a chain of leaf pages, reusing the pages
// in reuse (freeing leftovers) and returning the head.
func (ix *Index) writeLeafChain(segs []geom.Segment, reuse []pager.PageID) (pager.PageID, error) {
	cap := ix.leafCap()
	var pages []pager.PageID
	for need := (len(segs) + cap - 1) / cap; len(pages) < need || len(pages) == 0; {
		if len(reuse) > 0 {
			pages = append(pages, reuse[0])
			reuse = reuse[1:]
		} else {
			pages = append(pages, ix.st.Alloc())
		}
		if len(segs) == 0 {
			break
		}
	}
	for _, id := range reuse {
		ix.st.Free(id)
	}
	for i, id := range pages {
		start := i * cap
		end := start + cap
		if end > len(segs) {
			end = len(segs)
		}
		next := pager.InvalidPage
		if i+1 < len(pages) {
			next = pages[i+1]
		}
		page := make([]byte, ix.st.PageSize())
		c := pager.NewBuf(page)
		c.PutU8(typeLeaf)
		c.PutU8(0)
		c.PutU16(uint16(end - start))
		c.PutPage(next)
		for _, s := range segs[start:end] {
			segrec.Put(c, s)
		}
		if err := ix.st.Write(id, page); err != nil {
			return pager.InvalidPage, err
		}
	}
	return pages[0], nil
}

// readNode decodes either page kind; exactly one result is non-nil.
func (ix *Index) readNode(id pager.PageID) (*inode, []geom.Segment, error) {
	page, err := ix.st.Read(id)
	if err != nil {
		return nil, nil, err
	}
	c := pager.NewBuf(page)
	switch typ := c.U8(); typ {
	case typeLeaf:
		c.Skip(1)
		count := int(c.U16())
		next := c.Page()
		segs := make([]geom.Segment, count)
		for i := range segs {
			segs[i] = segrec.Get(c)
		}
		// Follow the chain; leaves are at most leafCutoff segments, a
		// handful of pages.
		for next != pager.InvalidPage {
			npage, err := ix.st.Read(next)
			if err != nil {
				return nil, nil, err
			}
			nc := pager.NewBuf(npage)
			if nc.U8() != typeLeaf {
				return nil, nil, fmt.Errorf("sol2: leaf chain page %d has wrong type", next)
			}
			nc.Skip(1)
			cnt := int(nc.U16())
			next = nc.Page()
			for i := 0; i < cnt; i++ {
				segs = append(segs, segrec.Get(nc))
			}
		}
		return nil, segs, nil
	case typeInternal:
		c.Skip(1)
		b := int(c.U8())
		c.Skip(1)
		n := &inode{
			bounds:   make([]float64, b),
			children: make([]pager.PageID, b+1),
			weight:   make([]int, b+1),
			built:    make([]int, b+1),
			c:        make([]*intervaltree.Tree, b),
			l:        make([]*bpst.Tree, b),
			r:        make([]*bpst.Tree, b),
		}
		for k := 0; k <= b; k++ {
			n.weight[k] = int(c.U32())
			n.built[k] = int(c.U32())
		}
		for i := range n.bounds {
			n.bounds[i] = c.F64()
		}
		for i := range n.children {
			n.children[i] = c.Page()
		}
		for i := 0; i < b; i++ {
			if n.c[i], err = intervaltree.AttachHandle(ix.st, ix.cCfg, c); err != nil {
				return nil, nil, err
			}
			n.l[i] = ix.getBPST(c, n.bounds[i], geom.SideLeft)
			n.r[i] = ix.getBPST(c, n.bounds[i], geom.SideRight)
		}
		if n.g, err = multislab.DecodeG(ix.st, n.bounds, c); err != nil {
			return nil, nil, err
		}
		return n, nil, nil
	default:
		return nil, nil, fmt.Errorf("sol2: page %d has unknown type %d", id, typ)
	}
}

// cItem converts an on-boundary vertical segment to its C_i interval.
func cItem(s geom.Segment) intervaltree.Item {
	return intervaltree.Item{Lo: s.MinY(), Hi: s.MaxY(), Seg: s}
}
