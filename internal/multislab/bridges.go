package multislab

import (
	"sort"

	"segdb/internal/fragtree"
	"segdb/internal/geom"
	"segdb/internal/pager"
)

// BuildG bulk-loads a G over the given fragments and builds its bridges.
func BuildG(st *pager.Store, bounds []float64, d int, frags []Frag) (*G, error) {
	g, err := NewG(st, bounds, d)
	if err != nil {
		return nil, err
	}
	lists := make([][]geom.Segment, len(g.nodes))
	for _, f := range frags {
		if err := g.validateFrag(f); err != nil {
			return nil, err
		}
		g.allocation(f.I, f.J, func(idx int) {
			lists[idx] = append(lists[idx], f.Seg)
		})
	}
	if err := g.rebuildAll(lists); err != nil {
		return nil, err
	}
	g.length = len(frags)
	g.sinceBridges = 0
	return g, nil
}

// RebuildBridges rebuilds every list and its cascading state from the
// stored originals. Insert calls it on an amortized schedule.
func (g *G) RebuildBridges() error {
	originals := make([][]geom.Segment, len(g.nodes))
	for i := range g.nodes {
		if g.nodes[i].treeL == nil {
			continue
		}
		err := g.nodes[i].treeL.Scan(func(e fragtree.Entry) bool {
			if e.Flags&fragtree.FlagAugmented == 0 {
				originals[i] = append(originals[i], e.Seg)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	if err := g.rebuildAll(originals); err != nil {
		return err
	}
	g.sinceBridges = 0
	return nil
}

// rebuildAll reassembles every node's list variants bottom-up: children
// are finalized before the parent's bridge entries reference their leaves.
func (g *G) rebuildAll(originals [][]geom.Segment) error {
	var rec func(idx int) error
	rec = func(idx int) error {
		n := &g.nodes[idx]
		if n.left >= 0 {
			if err := rec(n.left); err != nil {
				return err
			}
			if err := rec(n.right); err != nil {
				return err
			}
		}
		refX := g.refX(n)
		sorted := make([]geom.Segment, len(originals[idx]))
		copy(sorted, originals[idx])
		sort.Slice(sorted, func(a, b int) bool {
			ka, kb := sorted[a].YAt(refX), sorted[b].YAt(refX)
			if ka != kb {
				return ka < kb
			}
			return sorted[a].ID < sorted[b].ID
		})

		dropBoth := func() error {
			if n.treeL != nil {
				if err := n.treeL.Drop(); err != nil {
					return err
				}
				n.treeL = nil
			}
			if n.treeR != nil {
				if err := n.treeR.Drop(); err != nil {
					return err
				}
				n.treeR = nil
			}
			return nil
		}
		if n.left < 0 { // leaf: one plain list
			if err := dropBoth(); err != nil {
				return err
			}
			if len(sorted) == 0 {
				return nil
			}
			entries := make([]fragtree.Entry, len(sorted))
			for i, s := range sorted {
				entries[i] = fragtree.Entry{Seg: s}
			}
			t, err := fragtree.Bulk(g.st, refX, entries)
			if err != nil {
				return err
			}
			n.treeL = t
			return nil
		}

		entriesL, err := g.planVariant(sorted, refX, n.left)
		if err != nil {
			return err
		}
		entriesR, err := g.planVariant(sorted, refX, n.right)
		if err != nil {
			return err
		}
		if err := dropBoth(); err != nil {
			return err
		}
		if len(entriesL) > 0 {
			if n.treeL, err = fragtree.Bulk(g.st, refX, entriesL); err != nil {
				return err
			}
		}
		if len(entriesR) > 0 {
			if n.treeR, err = fragtree.Bulk(g.st, refX, entriesR); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// childOriginal is one child-list original with its leaf positions in the
// child's two variants.
type childOriginal struct {
	seg          geom.Segment
	leafL, leafR pager.PageID
}

// childOriginals walks a child's variants in lockstep, yielding each
// original with its position in both.
func (g *G) childOriginals(childIdx int) ([]childOriginal, error) {
	child := &g.nodes[childIdx]
	if child.treeL == nil {
		return nil, nil
	}
	curL, err := child.treeL.First()
	if err != nil {
		return nil, err
	}
	treeR := child.treeR
	if treeR == nil {
		treeR = child.treeL
	}
	curR, err := treeR.First()
	if err != nil {
		return nil, err
	}
	skip := func(c *fragtree.Cursor) error {
		for c.Valid() && c.Entry().Flags&fragtree.FlagAugmented != 0 {
			if err := c.Next(); err != nil {
				return err
			}
		}
		return nil
	}
	var out []childOriginal
	for {
		if err := skip(curL); err != nil {
			return nil, err
		}
		if err := skip(curR); err != nil {
			return nil, err
		}
		if !curL.Valid() {
			break
		}
		out = append(out, childOriginal{
			seg:   curL.Entry().Seg,
			leafL: curL.Leaf(),
			leafR: curR.Leaf(),
		})
		if err := curL.Next(); err != nil {
			return nil, err
		}
		if err := curR.Next(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// planVariant assembles one variant of a parent list: the parent's
// originals (sorted at refX), annotated with jumps where they are bridge
// elements, plus augmented copies of child-side bridge elements. Every
// (d+1)-th element of the merged parent/child sequence is a bridge, which
// realises the paper's d-property at build time.
func (g *G) planVariant(parentSorted []geom.Segment, refX float64, childIdx int) ([]fragtree.Entry, error) {
	childs, err := g.childOriginals(childIdx)
	if err != nil {
		return nil, err
	}
	type melem struct {
		seg          geom.Segment
		fromChild    bool
		leafL, leafR pager.PageID // child positions (running for parent elems)
	}
	merged := make([]melem, 0, len(parentSorted)+len(childs))
	lastL, lastR := pager.InvalidPage, pager.InvalidPage
	if len(childs) > 0 {
		lastL, lastR = childs[0].leafL, childs[0].leafR
	}
	pi, ci := 0, 0
	for pi < len(parentSorted) || ci < len(childs) {
		var takeParent bool
		switch {
		case ci >= len(childs):
			takeParent = true
		case pi >= len(parentSorted):
			takeParent = false
		default:
			pk, ck := parentSorted[pi].YAt(refX), childs[ci].seg.YAt(refX)
			takeParent = pk < ck || (pk == ck && parentSorted[pi].ID <= childs[ci].seg.ID)
		}
		if takeParent {
			merged = append(merged, melem{seg: parentSorted[pi], leafL: lastL, leafR: lastR})
			pi++
		} else {
			lastL, lastR = childs[ci].leafL, childs[ci].leafR
			merged = append(merged, melem{seg: childs[ci].seg, fromChild: true, leafL: lastL, leafR: lastR})
			ci++
		}
	}

	// Bridge selection: every (d+1)-th merged element.
	augmented := map[int]bool{}   // merged index → copy into parent
	annotated := map[uint64]int{} // parent segment ID → merged index
	for i := g.d; i < len(merged); i += g.d + 1 {
		if merged[i].leafL == pager.InvalidPage {
			continue // empty child: nothing to jump to
		}
		if merged[i].fromChild {
			augmented[i] = true
		} else {
			annotated[merged[i].seg.ID] = i
		}
	}

	var entries []fragtree.Entry
	for i, m := range merged {
		switch {
		case m.fromChild && augmented[i]:
			entries = append(entries, fragtree.Entry{
				Seg:   m.seg,
				Flags: fragtree.FlagAugmented | fragtree.FlagJump,
				JumpA: m.leafL,
				JumpB: m.leafR,
			})
		case m.fromChild:
			// Non-bridge child element: not copied.
		default:
			e := fragtree.Entry{Seg: m.seg}
			if j, ok := annotated[m.seg.ID]; ok && j == i {
				e.Flags = fragtree.FlagJump
				e.JumpA = m.leafL
				e.JumpB = m.leafR
			}
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// Insert adds a fragment to both variants of its allocation nodes.
// Bridges are not maintained incrementally; when enough inserts accumulate
// the whole cascading state is rebuilt, amortizing to the Theorem 2(iii)
// bound (substitution for the multislab-list operations of the paper's
// [10], see DESIGN.md §5). Queries stay correct between rebuilds via the
// root-search fallback.
func (g *G) Insert(f Frag) error {
	if err := g.validateFrag(f); err != nil {
		return err
	}
	var insertErr error
	g.allocation(f.I, f.J, func(idx int) {
		if insertErr != nil {
			return
		}
		n := &g.nodes[idx]
		if n.treeL == nil {
			if n.treeL, insertErr = fragtree.New(g.st, g.refX(n)); insertErr != nil {
				return
			}
		}
		insertErr = n.treeL.Insert(fragtree.Entry{Seg: f.Seg})
		if insertErr != nil || n.left < 0 {
			return
		}
		if n.treeR == nil {
			if n.treeR, insertErr = fragtree.New(g.st, g.refX(n)); insertErr != nil {
				return
			}
		}
		insertErr = n.treeR.Insert(fragtree.Entry{Seg: f.Seg})
	})
	if insertErr != nil {
		return insertErr
	}
	g.length++
	g.sinceBridges++
	if g.sinceBridges > g.length/4+16 {
		return g.RebuildBridges()
	}
	return nil
}
