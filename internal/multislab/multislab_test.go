package multislab

import (
	"math/rand"
	"testing"

	"segdb/internal/fragtree"
	"segdb/internal/geom"
	"segdb/internal/pager"
)

const testPageSize = 1024

func newStore() *pager.Store { return pager.MustOpenMem(testPageSize, 64) }

func bounds(b int) []float64 {
	out := make([]float64, b)
	for i := range out {
		out[i] = float64(i+1) * 10
	}
	return out
}

// randomFrags makes n non-crossing long fragments over the given
// boundaries: horizontal lines at distinct heights, each spanning a random
// boundary range (extending slightly past its end boundaries, as real
// segments do).
func randomFrags(rng *rand.Rand, n int, bds []float64) []Frag {
	frags := make([]Frag, n)
	for k := range frags {
		i := 1 + rng.Intn(len(bds)-1)
		j := i + 1 + rng.Intn(len(bds)-i)
		y := float64(k) + rng.Float64()*0.5
		frags[k] = Frag{
			Seg: geom.Seg(uint64(k+1), bds[i-1]-rng.Float64()*5, y, bds[j-1]+rng.Float64()*5, y),
			I:   i, J: j,
		}
	}
	return frags
}

func naiveHits(frags []Frag, bds []float64, q geom.VQuery) map[uint64]bool {
	out := map[uint64]bool{}
	for _, f := range frags {
		// G answers for the central part only: q.X within [s_I, s_J].
		if q.X < bds[f.I-1] || q.X > bds[f.J-1] {
			continue
		}
		if q.Hits(f.Seg) {
			out[f.Seg.ID] = true
		}
	}
	return out
}

func checkQuery(t *testing.T, g *G, frags []Frag, bds []float64, q geom.VQuery, useBridges bool) Stats {
	t.Helper()
	got := map[uint64]bool{}
	stats, err := g.Query(q, useBridges, func(s geom.Segment) {
		got[s.ID] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveHits(frags, bds, q)
	for id := range got {
		if !want[id] {
			t.Fatalf("%v bridges=%v: spurious id %d", q, useBridges, id)
		}
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("%v bridges=%v: missing id %d", q, useBridges, id)
		}
	}
	return stats
}

func TestNewGValidation(t *testing.T) {
	if _, err := NewG(newStore(), []float64{1}, 0); err == nil {
		t.Error("accepted a single boundary")
	}
	if _, err := NewG(newStore(), []float64{2, 1}, 0); err == nil {
		t.Error("accepted unsorted boundaries")
	}
	if _, err := NewG(newStore(), bounds(4), 1); err == nil {
		t.Error("accepted d=1")
	}
}

func TestFragValidation(t *testing.T) {
	g, err := NewG(newStore(), bounds(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(Frag{Seg: geom.Seg(1, 0, 0, 100, 0), I: 2, J: 2}); err == nil {
		t.Error("accepted J == I")
	}
	if err := g.Insert(Frag{Seg: geom.Seg(1, 15, 0, 25, 0), I: 1, J: 3}); err == nil {
		t.Error("accepted fragment not spanning its claimed boundaries")
	}
}

func TestNodeCount(t *testing.T) {
	for _, tc := range []struct{ b, want int }{{1, 0}, {2, 1}, {3, 3}, {5, 7}, {16, 29}} {
		if got := NodeCount(tc.b); got != tc.want {
			t.Errorf("NodeCount(%d) = %d, want %d", tc.b, got, tc.want)
		}
	}
}

func TestQueryMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range []int{2, 3, 5, 8} {
		bds := bounds(b)
		frags := randomFrags(rng, 300, bds)
		g, err := BuildG(newStore(), bds, 4, frags)
		if err != nil {
			t.Fatal(err)
		}
		for _, useBridges := range []bool{false, true} {
			for trial := 0; trial < 200; trial++ {
				x := rng.Float64() * float64(b+1) * 10
				y := rng.Float64() * 310
				q := geom.VSeg(x, y, y+rng.Float64()*40)
				checkQuery(t, g, frags, bds, q, useBridges)
			}
			// Boundary-exact queries (sol2 dedups; here hits are unique
			// already because checkQuery uses sets).
			for _, s := range bds {
				q := geom.VSeg(s, 50, 150)
				got := map[uint64]bool{}
				if _, err := g.Query(q, useBridges, func(sg geom.Segment) { got[sg.ID] = true }); err != nil {
					t.Fatal(err)
				}
				want := naiveHits(frags, bds, q)
				if len(got) != len(want) {
					t.Fatalf("boundary %g: got %d, want %d", s, len(got), len(want))
				}
			}
		}
	}
}

func TestBridgesActuallyUsed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bds := bounds(8)
	frags := randomFrags(rng, 2000, bds)
	g, err := BuildG(newStore(), bds, 4, frags)
	if err != nil {
		t.Fatal(err)
	}
	var jumps, searches int
	for trial := 0; trial < 300; trial++ {
		x := 10 + rng.Float64()*70
		y := rng.Float64() * 2000
		stats := checkQuery(t, g, frags, bds, geom.VSeg(x, y, y+20), true)
		jumps += stats.BridgeJumps
		searches += stats.ListsSearched
	}
	if jumps == 0 {
		t.Fatal("bridges never used")
	}
	// With bridges, root searches should be roughly one per query (the
	// first list), not one per level.
	if searches > 2*300 {
		t.Fatalf("bridges ineffective: %d root searches, %d jumps", searches, jumps)
	}
}

func TestBridgesReduceIO(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bds := bounds(16)
	frags := randomFrags(rng, 6000, bds)
	st := pager.MustOpenMem(testPageSize, 0)
	g, err := BuildG(st, bds, 4, frags)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]geom.VQuery, 200)
	for i := range queries {
		x := 10 + rng.Float64()*150
		y := rng.Float64() * 6000
		queries[i] = geom.VSeg(x, y, y+10)
	}
	run := func(useBridges bool) int64 {
		st.ResetStats()
		for _, q := range queries {
			if _, err := g.Query(q, useBridges, func(geom.Segment) {}); err != nil {
				t.Fatal(err)
			}
		}
		return st.Stats().Reads
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("bridges did not reduce I/O: %d with vs %d without", with, without)
	}
}

// TestDProperty checks the paper's Figure-7 invariant at build time: in
// every variant list, the gap between consecutive jump entries is bounded
// (≤ 2(d+1) list entries; the d-property plus uncopied child elements).
func TestDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bds := bounds(8)
	frags := randomFrags(rng, 1500, bds)
	for _, d := range []int{2, 4, 8} {
		g, err := BuildG(newStore(), bds, d, frags)
		if err != nil {
			t.Fatal(err)
		}
		for i := range g.nodes {
			n := &g.nodes[i]
			if n.left < 0 {
				continue
			}
			for _, tree := range []*fragtree.Tree{n.treeL, n.treeR} {
				if tree.Len() == 0 {
					continue
				}
				gap := 0
				maxGap := 0
				total := 0
				err := tree.Scan(func(e fragtree.Entry) bool {
					total++
					if e.Flags&fragtree.FlagJump != 0 {
						if gap > maxGap {
							maxGap = gap
						}
						gap = 0
					} else {
						gap++
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				// Lists shorter than a bridge interval may have no jumps.
				if total > 2*(d+1) && maxGap > 2*(d+1) {
					t.Fatalf("d=%d node %d: max jump gap %d exceeds 2(d+1)=%d",
						d, i, maxGap, 2*(d+1))
				}
			}
		}
	}
}

func TestInsertThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bds := bounds(6)
	all := randomFrags(rng, 600, bds)
	g, err := BuildG(newStore(), bds, 4, all[:300])
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range all[300:] {
		if err := g.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 600 {
		t.Fatalf("Len = %d", g.Len())
	}
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64() * 70
		y := rng.Float64() * 620
		checkQuery(t, g, all, bds, geom.VSeg(x, y, y+30), true)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bds := bounds(5)
	frags := randomFrags(rng, 400, bds)
	st := newStore()
	g, err := BuildG(st, bds, 4, frags)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, DirSize(len(bds)))
	g.EncodeTo(pager.NewBuf(buf))
	g2, err := DecodeG(st, bds, pager.NewBuf(buf))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || g2.D() != g.D() {
		t.Fatalf("decoded meta mismatch: len %d/%d d %d/%d", g2.Len(), g.Len(), g2.D(), g.D())
	}
	for trial := 0; trial < 100; trial++ {
		x := rng.Float64() * 60
		y := rng.Float64() * 420
		checkQuery(t, g2, frags, bds, geom.VSeg(x, y, y+25), true)
	}
}

func TestCollectDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bds := bounds(6)
	frags := randomFrags(rng, 200, bds)
	g, err := BuildG(newStore(), bds, 4, frags)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := g.Collect()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]bool{}
	for _, s := range segs {
		ids[s.ID] = true
	}
	if len(ids) != len(frags) {
		t.Fatalf("Collect covers %d distinct fragments, want %d", len(ids), len(frags))
	}
}

func TestDropFreesPages(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	st := newStore()
	base := st.PagesInUse()
	g, err := BuildG(st, bounds(8), 4, randomFrags(rng, 500, bounds(8)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Drop(); err != nil {
		t.Fatal(err)
	}
	if got := st.PagesInUse(); got != base {
		t.Fatalf("PagesInUse = %d, want %d", got, base)
	}
}
