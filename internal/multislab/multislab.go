// Package multislab implements the structure G of Section 4.2: a segment
// tree over the slab boundaries s_1..s_b of a Solution-2 first-level node,
// storing the long fragments (segments spanning at least one full slab) in
// per-node multislab lists, each list held in a fragment B+-tree
// (internal/fragtree), plus the fractional-cascading bridges of Section
// 4.3 that make every list search after the first cost O(1) I/Os.
//
// Topology. The leaves of G are the b-1 inner slabs [s_i, s_{i+1}]; an
// internal node covers the union of its leaves' slabs and splits them at a
// middle boundary. A long fragment crossing boundaries i..j is recorded at
// its canonical allocation nodes — at most two per level, O(log2 b) total.
// Every fragment in a node's list spans the node's whole interval, so the
// list is totally ordered vertically and searchable at any x inside the
// interval.
//
// Bridges and list variants. The paper augments each list with copies of
// every (d+1)-th element of the merged parent/child sequence. A copy of a
// left-child fragment spans only the left half of the parent's interval,
// so a single augmented list would no longer be totally ordered at every
// query line. This implementation therefore keeps, per internal node, two
// list variants: treeL = originals + left-child copies (every entry spans
// [s_lo, s_split], sound for queries with x0 ≤ s_split) and treeR =
// originals + right-child copies (sound for x0 ≥ s_split). The query
// descends toward exactly one child, and the variant selected by x0 is
// precisely the one carrying the bridges toward that child. Space doubles
// against the paper's single augmented list — a constant factor inside
// the O(n log2 B) bound of Theorem 2(i), recorded in DESIGN.md §5.
//
// The d-property (paper, Section 4.3) — between consecutive bridges lie at
// most 2d merged elements — bounds both the scan from any list position to
// a jump entry and the walk from a jump landing to the child's first
// answer by O(d) entries: O(1) pages. Bridges are only an accelerator:
// a failed scan (possible between the amortized bridge rebuilds) falls
// back to a root search.
package multislab

import (
	"fmt"
	"sort"

	"segdb/internal/fragtree"
	"segdb/internal/geom"
	"segdb/internal/pager"
)

// Frag is a long fragment: a segment together with the 1-based range
// [I, J] of first-level boundaries it crosses; it must satisfy J ≥ I+1
// (spanning at least one full slab). The segment keeps its original
// geometry; the fragment's extent is implied by the boundary range.
type Frag struct {
	Seg  geom.Segment
	I, J int
}

// G is the long-fragment structure of one Solution-2 node.
type G struct {
	st           *pager.Store
	bounds       []float64 // s_1..s_b, ascending, b ≥ 2
	d            int       // bridge spacing
	nodes        []gnode
	length       int
	sinceBridges int
}

// gnode is one segment-tree node. Topology is a pure function of
// len(bounds), so only the tree handles persist. Lists are nil until they
// receive a fragment; leaves hold at most a single list (treeR stays nil).
type gnode struct {
	lo, hi      int // covered boundary range: interval [s_lo, s_hi]
	split       int // middle boundary index; 0 for leaves
	left, right int // node indexes; -1 for leaves
	treeL       *fragtree.Tree
	treeR       *fragtree.Tree
}

// Stats describes the work of one G query, for experiments E7 and E14.
type Stats struct {
	ListsSearched int // lists positioned by a root search
	BridgeJumps   int // lists positioned through a bridge
	Fallbacks     int // bridge navigation gave up and searched from the root
	Reported      int
}

// NewG creates an empty G over the given boundaries. d is the bridge
// spacing constant (≥ 2 per the paper); 0 selects 4.
func NewG(st *pager.Store, bounds []float64, d int) (*G, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("multislab: need ≥ 2 boundaries, got %d", len(bounds))
	}
	if !sort.Float64sAreSorted(bounds) {
		return nil, fmt.Errorf("multislab: boundaries not sorted")
	}
	if d == 0 {
		d = 4
	}
	if d < 2 {
		return nil, fmt.Errorf("multislab: d=%d < 2", d)
	}
	g := &G{st: st, bounds: bounds, d: d}
	g.buildTopology()
	// Lists are created lazily (nil = empty): a G with no long fragments
	// costs no pages, which matters because every first-level node of
	// Solution 2 embeds one G.
	return g, nil
}

// buildTopology lays out the segment tree over inner slabs, identified by
// their left boundary index.
func (g *G) buildTopology() {
	b := len(g.bounds)
	var build func(lo, hi int) int // node over boundaries [lo, hi]
	build = func(lo, hi int) int {
		idx := len(g.nodes)
		g.nodes = append(g.nodes, gnode{lo: lo, hi: hi, left: -1, right: -1})
		if hi-lo > 1 {
			mid := (lo + hi) / 2
			l := build(lo, mid)
			r := build(mid, hi)
			g.nodes[idx].split = mid
			g.nodes[idx].left = l
			g.nodes[idx].right = r
		}
		return idx
	}
	build(1, b)
}

// NodeCount returns the number of G nodes for b boundaries, for sizing
// the directory in the owner's page.
func NodeCount(b int) int {
	if b < 2 {
		return 0
	}
	return 2*(b-1) - 1
}

// refX is the ordering line of a node's lists: its split boundary, or the
// slab midpoint for leaves. Every fragment allocated at the node spans
// [s_lo, s_hi] ∋ refX, and so do both children's fragments (each child's
// interval has the split as an endpoint), so copies are orderable too.
func (g *G) refX(n *gnode) float64 {
	if n.split > 0 {
		return g.bounds[n.split-1]
	}
	return (g.bounds[n.lo-1] + g.bounds[n.hi-1]) / 2
}

// validateFrag checks the fragment's boundary range.
func (g *G) validateFrag(f Frag) error {
	if f.I < 1 || f.J > len(g.bounds) || f.J < f.I+1 {
		return fmt.Errorf("multislab: fragment range [%d,%d] invalid for %d boundaries",
			f.I, f.J, len(g.bounds))
	}
	if !geom.SpansX(f.Seg, g.bounds[f.I-1]) || !geom.SpansX(f.Seg, g.bounds[f.J-1]) {
		return fmt.Errorf("multislab: %v does not span boundaries %d..%d", f.Seg, f.I, f.J)
	}
	return nil
}

// allocation calls fn with each canonical allocation node index for a
// fragment covering boundary interval [s_i, s_j].
func (g *G) allocation(i, j int, fn func(idx int)) {
	var rec func(idx int)
	rec = func(idx int) {
		n := &g.nodes[idx]
		if i <= n.lo && n.hi <= j {
			fn(idx)
			return
		}
		if n.left < 0 {
			return
		}
		if i < n.split {
			rec(n.left)
		}
		if j > n.split {
			rec(n.right)
		}
	}
	rec(0)
}

// Len returns the number of fragments added.
func (g *G) Len() int { return g.length }

// D returns the bridge spacing parameter.
func (g *G) D() int { return g.d }

// handleSize is one persisted tree handle: root u32, height u8, len u32.
const handleSize = 9

// DirSize returns the encoded directory size for b boundaries: meta plus
// two handles per node.
func DirSize(b int) int { return 1 + 4 + 4 + NodeCount(b)*2*handleSize }

func putTreeHandle(c *pager.Buf, t *fragtree.Tree) {
	if t == nil {
		c.PutPage(pager.InvalidPage)
		c.PutU8(0)
		c.PutU32(0)
		return
	}
	root, height, length := t.Handle()
	c.PutPage(root)
	c.PutU8(uint8(height))
	c.PutU32(uint32(length))
}

func getTreeHandle(st *pager.Store, refX float64, c *pager.Buf) *fragtree.Tree {
	root := c.Page()
	height := int(c.U8())
	length := int(c.U32())
	if root == pager.InvalidPage {
		return nil
	}
	return fragtree.Attach(st, refX, root, height, length)
}

// EncodeTo persists the directory (d, counters, per-node tree handles).
func (g *G) EncodeTo(c *pager.Buf) {
	c.PutU8(uint8(g.d))
	c.PutU32(uint32(g.length))
	c.PutU32(uint32(g.sinceBridges))
	for i := range g.nodes {
		putTreeHandle(c, g.nodes[i].treeL)
		putTreeHandle(c, g.nodes[i].treeR)
	}
}

// DecodeG reconstructs a G from a directory persisted with EncodeTo.
func DecodeG(st *pager.Store, bounds []float64, c *pager.Buf) (*G, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("multislab: decode with %d boundaries", len(bounds))
	}
	g := &G{st: st, bounds: bounds}
	g.d = int(c.U8())
	g.length = int(c.U32())
	g.sinceBridges = int(c.U32())
	g.buildTopology()
	for i := range g.nodes {
		refX := g.refX(&g.nodes[i])
		g.nodes[i].treeL = getTreeHandle(st, refX, c)
		g.nodes[i].treeR = getTreeHandle(st, refX, c)
	}
	return g, nil
}

// Drop frees all pages.
func (g *G) Drop() error {
	for i := range g.nodes {
		if g.nodes[i].treeL != nil {
			if err := g.nodes[i].treeL.Drop(); err != nil {
				return err
			}
		}
		if g.nodes[i].treeR != nil {
			if err := g.nodes[i].treeR.Drop(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ListEntries returns the total number of list entries across all nodes
// and variants, including fractional-cascading copies — the G structure's
// raw footprint, for diagnostics.
func (g *G) ListEntries() (int, error) {
	total := 0
	for i := range g.nodes {
		if g.nodes[i].treeL != nil {
			total += g.nodes[i].treeL.Len()
		}
		if g.nodes[i].treeR != nil {
			total += g.nodes[i].treeR.Len()
		}
	}
	return total, nil
}

// Collect returns the stored fragments: original entries only, one per
// allocation node; callers dedup by segment ID.
func (g *G) Collect() ([]geom.Segment, error) {
	var out []geom.Segment
	for i := range g.nodes {
		if g.nodes[i].treeL == nil {
			continue
		}
		err := g.nodes[i].treeL.Scan(func(e fragtree.Entry) bool {
			if e.Flags&fragtree.FlagAugmented == 0 {
				out = append(out, e.Seg)
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
