package multislab

import (
	"segdb/internal/fragtree"
	"segdb/internal/geom"
	"segdb/internal/pager"
)

// Query reports every long fragment whose central part is intersected by
// the vertical query q (Section 4.3's search algorithm). The walk visits
// the root-to-leaf path of G covering q.X; the first list is positioned by
// a root search, subsequent lists through bridges when useBridges is true
// (Theorem 2) and by root searches otherwise (the Lemma 4 configuration,
// measured as the fractional-cascading ablation E6 vs E7).
//
// When q.X coincides with a split boundary both children are walked; the
// same fragment can then be reported from two allocation nodes, and the
// caller (internal/sol2) deduplicates, as it already must for boundary
// queries.
func (g *G) Query(q geom.VQuery, useBridges bool, emit func(geom.Segment)) (Stats, error) {
	var stats Stats
	if len(g.nodes) == 0 || q.X < g.bounds[0] || q.X > g.bounds[len(g.bounds)-1] {
		return stats, nil
	}
	err := g.walk(0, q, useBridges, nil, &stats, emit)
	return stats, err
}

// bridgeBudget bounds how many entries a bridge scan or landing walk-back
// may touch before falling back to a root search: the d-property promises
// a bridge within ~2(d+1) list elements of any position.
func (g *G) bridgeBudget() int { return 4 * (g.d + 1) }

// variantFor returns the list variant sound for q.X (possibly nil for an
// empty list): treeL covers x0 ≤ split, treeR covers x0 ≥ split.
// Boundary-exact queries use treeL.
func (g *G) variantFor(n *gnode, x0 float64) *fragtree.Tree {
	if n.split > 0 && x0 > g.bounds[n.split-1] {
		return n.treeR
	}
	return n.treeL
}

// walk processes node idx. hint, when non-nil, is a cursor in the parent's
// variant positioned at the parent's first candidate; the parent's variant
// is the one whose bridges lead exactly to this node.
func (g *G) walk(idx int, q geom.VQuery, useBridges bool, hint *fragtree.Cursor, stats *Stats, emit func(geom.Segment)) error {
	n := &g.nodes[idx]
	variant := g.variantFor(n, q.X)
	var anchor *fragtree.Cursor
	if variant != nil {
		var err error
		anchor, err = g.position(variant, variant == n.treeR, q, useBridges, hint, stats)
		if err != nil {
			return err
		}
	}

	// Report forward: every entry of this variant spans q.X, so the
	// candidates are ordered and the answers are the prefix with crossing
	// ≤ q.YHi. Augmented copies are position markers, never answers.
	rep := &fragtree.Cursor{}
	if anchor != nil {
		rep = anchor.Clone()
	}
	for rep.Valid() {
		e := rep.Entry()
		y := e.Seg.YAt(q.X)
		if y > q.YHi {
			break
		}
		if e.Flags&fragtree.FlagAugmented == 0 && y >= q.YLo {
			stats.Reported++
			emit(e.Seg)
		}
		if err := rep.Next(); err != nil {
			return err
		}
	}

	if n.left < 0 {
		return nil
	}
	split := g.bounds[n.split-1]
	if q.X <= split {
		// The treeL anchor carries bridges into the left child.
		leftHint := anchor
		if variant != n.treeL {
			leftHint = nil
		}
		if err := g.walk(n.left, q, useBridges, leftHint, stats, emit); err != nil {
			return err
		}
	}
	if q.X >= split {
		rightHint := anchor
		if variant != n.treeR {
			rightHint = nil
		}
		return g.walk(n.right, q, useBridges, rightHint, stats, emit)
	}
	return nil
}

// position returns a cursor at the variant's first candidate: the first
// entry crossing q.X at or above q.YLo. isRight tells which of the node's
// two variants was chosen, selecting the matching jump pointer.
func (g *G) position(variant *fragtree.Tree, isRight bool, q geom.VQuery, useBridges bool, hint *fragtree.Cursor, stats *Stats) (*fragtree.Cursor, error) {
	if useBridges && hint != nil {
		c, ok, err := g.followBridge(variant, isRight, q, hint)
		if err != nil {
			return nil, err
		}
		if ok {
			stats.BridgeJumps++
			return c, nil
		}
		stats.Fallbacks++
	}
	stats.ListsSearched++
	return variant.SeekCrossing(q.X, q.YLo)
}

// followBridge scans forward from the parent's anchor for a jump entry,
// lands in this variant's leaf, and walks back to the first entry at or
// above q.YLo. Failure (no jump within budget, or a landing needing too
// long a walk) reports ok = false; the caller falls back to a root
// search, so bridges never affect answers.
func (g *G) followBridge(variant *fragtree.Tree, isRight bool, q geom.VQuery, hint *fragtree.Cursor) (*fragtree.Cursor, bool, error) {
	budget := g.bridgeBudget()
	scan := hint.Clone()
	var leaf pager.PageID
	found := false
	for i := 0; i < budget && scan.Valid(); i++ {
		e := scan.Entry()
		if e.Flags&fragtree.FlagJump != 0 {
			// JumpA targets the child's treeL, JumpB its treeR.
			leaf = e.JumpA
			if isRight {
				leaf = e.JumpB
			}
			found = true
			break
		}
		if err := scan.Next(); err != nil {
			return nil, false, err
		}
	}
	if !found || leaf == pager.InvalidPage {
		return nil, false, nil
	}
	c, err := variant.SeekInLeaf(leaf, q.X, q.YLo)
	if err != nil {
		return nil, false, err
	}
	if !c.Valid() {
		return nil, false, nil // past the end or stale: confirm by fallback
	}
	for i := 0; i < budget; i++ {
		prev := c.Clone()
		if err := prev.Prev(); err != nil {
			return nil, false, err
		}
		if !prev.Valid() || prev.Entry().Seg.YAt(q.X) < q.YLo {
			return c, true, nil
		}
		c = prev
	}
	return nil, false, nil // walk-back budget exhausted: stale bridges
}
