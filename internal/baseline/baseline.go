// Package baseline implements the comparators the paper's structures are
// measured against in EXPERIMENTS.md:
//
//   - Scan: the trivial O(n) full scan — the floor every index must beat.
//   - StabFilter: the approach available from prior work (the paper's
//     Section 1): an external interval tree over the segments'
//     x-projections answers the stabbing query at x0 (all segments
//     crossing the vertical LINE), and the y-range condition is filtered
//     afterwards. Its cost is O(log_B n + t_line) where t_line counts every
//     segment crossing the line — the quantity the paper's VS structures
//     replace with the true output t. Experiment E12 measures the gap.
package baseline

import (
	"segdb/internal/geom"
	"segdb/internal/intervaltree"
	"segdb/internal/pager"
	"segdb/internal/segrec"
)

// Scan is the full-scan index: segments stored in a chain of pages.
type Scan struct {
	st     *pager.Store
	pages  []pager.PageID
	perCap int
	length int
}

// NewScan stores the segments in packed pages.
func NewScan(st *pager.Store, segs []geom.Segment) (*Scan, error) {
	s := &Scan{st: st, perCap: (st.PageSize() - 4) / segrec.Size, length: len(segs)}
	for start := 0; start < len(segs); start += s.perCap {
		end := start + s.perCap
		if end > len(segs) {
			end = len(segs)
		}
		page := make([]byte, st.PageSize())
		c := pager.NewBuf(page)
		c.PutU16(uint16(end - start))
		c.Skip(2)
		for _, sg := range segs[start:end] {
			segrec.Put(c, sg)
		}
		id := st.Alloc()
		if err := st.Write(id, page); err != nil {
			return nil, err
		}
		s.pages = append(s.pages, id)
	}
	return s, nil
}

// Len returns the number of stored segments.
func (s *Scan) Len() int { return s.length }

// Query reports every stored segment intersecting q by reading everything.
func (s *Scan) Query(q geom.VQuery, emit func(geom.Segment)) error {
	for _, id := range s.pages {
		page, err := s.st.Read(id)
		if err != nil {
			return err
		}
		c := pager.NewBuf(page)
		count := int(c.U16())
		c.Skip(2)
		for i := 0; i < count; i++ {
			sg := segrec.Get(c)
			if q.Hits(sg) {
				emit(sg)
			}
		}
	}
	return nil
}

// Collect returns every stored segment.
func (s *Scan) Collect() ([]geom.Segment, error) {
	out := make([]geom.Segment, 0, s.length)
	for _, id := range s.pages {
		page, err := s.st.Read(id)
		if err != nil {
			return nil, err
		}
		c := pager.NewBuf(page)
		count := int(c.U16())
		c.Skip(2)
		for i := 0; i < count; i++ {
			out = append(out, segrec.Get(c))
		}
	}
	return out, nil
}

// Drop frees all pages.
func (s *Scan) Drop() error {
	for _, id := range s.pages {
		s.st.Free(id)
	}
	s.pages = nil
	s.length = 0
	return nil
}

// Insert appends a segment (last page rewritten or a new page).
func (s *Scan) Insert(sg geom.Segment) error {
	last := s.length % s.perCap
	if len(s.pages) == 0 || last == 0 {
		page := make([]byte, s.st.PageSize())
		c := pager.NewBuf(page)
		c.PutU16(1)
		c.Skip(2)
		segrec.Put(c, sg)
		id := s.st.Alloc()
		if err := s.st.Write(id, page); err != nil {
			return err
		}
		s.pages = append(s.pages, id)
		s.length++
		return nil
	}
	id := s.pages[len(s.pages)-1]
	page, err := s.st.Read(id)
	if err != nil {
		return err
	}
	c := pager.NewBuf(page)
	c.PutU16(uint16(last + 1))
	segrec.PutAt(page, 4+last*segrec.Size, sg)
	if err := s.st.Write(id, page); err != nil {
		return err
	}
	s.length++
	return nil
}

// StabFilter answers VS queries by 1-D stabbing on x-projections plus a
// y filter.
type StabFilter struct {
	tree *intervaltree.Tree
}

// NewStabFilter builds the x-projection interval tree. B sizes the tree
// as in the other structures.
func NewStabFilter(st *pager.Store, b int, segs []geom.Segment) (*StabFilter, error) {
	items := make([]intervaltree.Item, len(segs))
	for i, s := range segs {
		items[i] = intervaltree.Item{Lo: s.MinX(), Hi: s.MaxX(), Seg: s}
	}
	t, err := intervaltree.Build(st, intervaltree.DefaultConfig(b), items)
	if err != nil {
		return nil, err
	}
	return &StabFilter{tree: t}, nil
}

// Len returns the number of stored segments.
func (f *StabFilter) Len() int { return f.tree.Len() }

// Query stabs at q.X and filters by the y range. Every segment crossing
// the vertical line is touched, whether or not it meets the query's y
// range — the structural handicap experiment E12 quantifies.
func (f *StabFilter) Query(q geom.VQuery, emit func(geom.Segment)) (touched int, err error) {
	err = f.tree.Stab(q.X, func(it intervaltree.Item) {
		touched++
		if q.Hits(it.Seg) {
			emit(it.Seg)
		}
	})
	return touched, err
}

// Insert adds a segment.
func (f *StabFilter) Insert(s geom.Segment) error {
	return f.tree.Insert(intervaltree.Item{Lo: s.MinX(), Hi: s.MaxX(), Seg: s})
}

// Delete removes a segment.
func (f *StabFilter) Delete(s geom.Segment) (bool, error) {
	return f.tree.Delete(intervaltree.Item{Lo: s.MinX(), Hi: s.MaxX(), Seg: s})
}
