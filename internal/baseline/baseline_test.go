package baseline

import (
	"math/rand"
	"testing"

	"segdb/internal/geom"
	"segdb/internal/pager"
	"segdb/internal/workload"
)

const testPageSize = 64 + 48*16

func sameSet(t *testing.T, got, want []geom.Segment, label string) {
	t.Helper()
	g := map[uint64]bool{}
	for _, s := range got {
		if g[s.ID] {
			t.Fatalf("%s: duplicate %d", label, s.ID)
		}
		g[s.ID] = true
	}
	w := map[uint64]bool{}
	for _, s := range want {
		w[s.ID] = true
	}
	if len(g) != len(w) {
		t.Fatalf("%s: got %d, want %d", label, len(g), len(w))
	}
	for id := range w {
		if !g[id] {
			t.Fatalf("%s: missing %d", label, id)
		}
	}
}

func TestScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	segs := workload.Layers(rng, 8, 40, 300)
	st := pager.MustOpenMem(testPageSize, 16)
	sc, err := NewScan(st, segs)
	if err != nil {
		t.Fatal(err)
	}
	box := workload.BBox(segs)
	for _, q := range workload.RandomVS(rng, 100, box, 20) {
		var got []geom.Segment
		if err := sc.Query(q, func(s geom.Segment) { got = append(got, s) }); err != nil {
			t.Fatal(err)
		}
		sameSet(t, got, q.FilterHits(segs), "scan")
	}
}

func TestScanInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	segs := workload.Levels(rng, 100, 100, 1.5)
	st := pager.MustOpenMem(testPageSize, 16)
	sc, err := NewScan(st, segs[:30])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs[30:] {
		if err := sc.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Len() != 100 {
		t.Fatalf("Len = %d", sc.Len())
	}
	q := geom.VLine(50)
	var got []geom.Segment
	if err := sc.Query(q, func(s geom.Segment) { got = append(got, s) }); err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, q.FilterHits(segs), "scan after insert")
}

func TestScanCostIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := workload.Levels(rng, 3200, 100, 1.5)
	st := pager.MustOpenMem(testPageSize, 0)
	sc, err := NewScan(st, segs)
	if err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	if err := sc.Query(geom.VSeg(50, 0, 1), func(geom.Segment) {}); err != nil {
		t.Fatal(err)
	}
	if got, want := int(st.Stats().Reads), len(sc.pages); got != want {
		t.Fatalf("scan reads %d pages, want all %d", got, want)
	}
}

func TestScanCollectAndDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	segs := workload.Levels(rng, 150, 80, 1.5)
	st := pager.MustOpenMem(testPageSize, 16)
	base := st.PagesInUse()
	sc, err := NewScan(st, segs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, segs, "scan collect")
	if err := sc.Drop(); err != nil {
		t.Fatal(err)
	}
	if st.PagesInUse() != base {
		t.Fatalf("pages leaked after Drop: %d vs %d", st.PagesInUse(), base)
	}
	if sc.Len() != 0 {
		t.Fatalf("Len after Drop = %d", sc.Len())
	}
}

func TestStabFilterMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	segs := workload.Grid(rng, 15, 15, 0.9, 0.2)
	st := pager.MustOpenMem(testPageSize, 16)
	f, err := NewStabFilter(st, 16, segs)
	if err != nil {
		t.Fatal(err)
	}
	box := workload.BBox(segs)
	for _, q := range append(workload.RandomVS(rng, 100, box, 3), workload.RandomStabs(rng, 30, box)...) {
		var got []geom.Segment
		if _, err := f.Query(q, func(s geom.Segment) { got = append(got, s) }); err != nil {
			t.Fatal(err)
		}
		sameSet(t, got, q.FilterHits(segs), "stab-filter")
	}
}

// TestStabFilterTouchesWholeColumn shows the structural handicap: a short
// query over a tall stack touches every segment in the column.
func TestStabFilterTouchesWholeColumn(t *testing.T) {
	segs := workload.Stacks(4, 50, 20)
	st := pager.MustOpenMem(testPageSize, 16)
	f, err := NewStabFilter(st, 16, segs)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.VSeg(10, -0.5, 1.5) // hits 2 of 50 levels in column 0
	var got []geom.Segment
	touched, err := f.Query(q, func(s geom.Segment) { got = append(got, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("answers = %d, want 2", len(got))
	}
	if touched != 50 {
		t.Fatalf("touched = %d, want the whole 50-segment column", touched)
	}
}

func TestStabFilterInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	segs := workload.Levels(rng, 200, 150, 1.3)
	st := pager.MustOpenMem(testPageSize, 16)
	f, err := NewStabFilter(st, 16, segs[:100])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs[100:] {
		if err := f.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	found, err := f.Delete(segs[0])
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	q := geom.VLine(75)
	var got []geom.Segment
	if _, err := f.Query(q, func(s geom.Segment) { got = append(got, s) }); err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, q.FilterHits(segs[1:]), "after delete")
}
