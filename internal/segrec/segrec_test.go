package segrec

import (
	"math"
	"testing"

	"segdb/internal/geom"
	"segdb/internal/pager"
)

func TestRoundTrip(t *testing.T) {
	tests := []geom.Segment{
		geom.Seg(1, 0, 0, 1, 1),
		geom.Seg(math.MaxUint64, -1e300, 1e300, 1e-300, -1e-300),
		geom.Seg(42, math.Inf(-1), 0, math.Inf(1), 0),
		{},
	}
	buf := make([]byte, Size)
	for _, want := range tests {
		Put(pager.NewBuf(buf), want)
		got := Get(pager.NewBuf(buf))
		if got != want {
			t.Errorf("round trip: got %v, want %v", got, want)
		}
	}
}

func TestPutAtGetAt(t *testing.T) {
	buf := make([]byte, 3*Size)
	segs := []geom.Segment{
		geom.Seg(1, 1, 2, 3, 4),
		geom.Seg(2, 5, 6, 7, 8),
		geom.Seg(3, 9, 10, 11, 12),
	}
	for i, s := range segs {
		PutAt(buf, i*Size, s)
	}
	for i, want := range segs {
		if got := GetAt(buf, i*Size); got != want {
			t.Errorf("slot %d: got %v, want %v", i, got, want)
		}
	}
	// Overwriting a middle slot leaves neighbours intact.
	PutAt(buf, Size, geom.Seg(99, 0, 0, 0, 1))
	if got := GetAt(buf, 0); got != segs[0] {
		t.Error("slot 0 corrupted by neighbouring write")
	}
	if got := GetAt(buf, 2*Size); got != segs[2] {
		t.Error("slot 2 corrupted by neighbouring write")
	}
	if got := GetAt(buf, Size); got.ID != 99 {
		t.Error("overwrite not visible")
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	buf := make([]byte, Size)
	c := pager.NewBuf(buf)
	Put(c, geom.Seg(7, 1, 2, 3, 4))
	if c.Pos() != Size {
		t.Fatalf("Put consumed %d bytes, Size says %d", c.Pos(), Size)
	}
}
