// Package segrec defines the on-page record format for plane segments,
// shared by every index structure in the module: 40 bytes per segment
// (ID + four float64 coordinates), little-endian.
package segrec

import (
	"segdb/internal/geom"
	"segdb/internal/pager"
)

// Size is the encoded size of one segment record in bytes.
const Size = 40

// Put encodes s at the cursor position.
func Put(c *pager.Buf, s geom.Segment) {
	c.PutU64(s.ID)
	c.PutF64(s.A.X)
	c.PutF64(s.A.Y)
	c.PutF64(s.B.X)
	c.PutF64(s.B.Y)
}

// Get decodes a segment at the cursor position.
func Get(c *pager.Buf) geom.Segment {
	var s geom.Segment
	s.ID = c.U64()
	s.A.X = c.F64()
	s.A.Y = c.F64()
	s.B.X = c.F64()
	s.B.Y = c.F64()
	return s
}

// PutAt encodes s into buf at byte offset off.
func PutAt(buf []byte, off int, s geom.Segment) {
	Put(pager.NewBuf(buf).Seek(off), s)
}

// GetAt decodes a segment from buf at byte offset off.
func GetAt(buf []byte, off int) geom.Segment {
	return Get(pager.NewBuf(buf).Seek(off))
}
