package bptree

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"segdb/internal/pager"
)

const testPageSize = 256

func newStore(t *testing.T) *pager.Store {
	t.Helper()
	return pager.MustOpenMem(testPageSize, 16)
}

func val64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func mustNew(t *testing.T, st *pager.Store) *Tree {
	t.Helper()
	tr, err := New(st, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func collect(t *testing.T, tr *Tree) []Key {
	t.Helper()
	var keys []Key
	err := tr.Scan(MinKey(), func(k Key, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestEmptyTree(t *testing.T) {
	tr := mustNew(t, newStore(t))
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("cursor valid on empty tree")
	}
	if _, found, _ := tr.Find(Key{K: 1}); found {
		t.Fatal("Find on empty tree reported a hit")
	}
}

func TestInsertFindSmall(t *testing.T) {
	tr := mustNew(t, newStore(t))
	keys := []Key{{K: 3, ID: 1}, {K: 1, ID: 2}, {K: 2, ID: 3}, {K: 1, ID: 1}}
	for i, k := range keys {
		if err := tr.Insert(k, val64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, tr)
	want := []Key{{K: 1, ID: 1}, {K: 1, ID: 2}, {K: 2, ID: 3}, {K: 3, ID: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	v, found, err := tr.Find(Key{K: 2, ID: 3})
	if err != nil || !found {
		t.Fatalf("Find: %v %v", found, err)
	}
	if binary.LittleEndian.Uint64(v) != 2 {
		t.Fatalf("Find value = %d, want 2", binary.LittleEndian.Uint64(v))
	}
}

func TestInsertRejectsWrongValSize(t *testing.T) {
	tr := mustNew(t, newStore(t))
	if err := tr.Insert(Key{K: 1}, make([]byte, 7)); err == nil {
		t.Fatal("Insert accepted a short value")
	}
}

func TestManyInsertsSortedIteration(t *testing.T) {
	tr := mustNew(t, newStore(t))
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	for i := 0; i < n; i++ {
		k := Key{K: rng.Float64() * 100, ID: uint64(i)}
		if err := tr.Insert(k, val64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	keys := collect(t, tr)
	if len(keys) != n {
		t.Fatalf("iterated %d keys, want %d", len(keys), n)
	}
	for i := 1; i < n; i++ {
		if keys[i].Less(keys[i-1]) {
			t.Fatalf("keys out of order at %d: %+v > %+v", i, keys[i-1], keys[i])
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d after %d inserts on %dB pages: splits never happened?",
			tr.Height(), n, testPageSize)
	}
}

func TestDuplicateExactKeys(t *testing.T) {
	tr := mustNew(t, newStore(t))
	k := Key{K: 5, ID: 7}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(k, val64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(collect(t, tr)); got != 100 {
		t.Fatalf("duplicate key count = %d, want 100", got)
	}
	// Delete removes one at a time.
	for i := 99; i >= 0; i-- {
		found, err := tr.Delete(k)
		if err != nil || !found {
			t.Fatalf("Delete #%d: found=%v err=%v", 99-i, found, err)
		}
		if tr.Len() != i {
			t.Fatalf("Len = %d, want %d", tr.Len(), i)
		}
	}
	if found, _ := tr.Delete(k); found {
		t.Fatal("Delete on empty found an entry")
	}
}

func TestSeekGE(t *testing.T) {
	tr := mustNew(t, newStore(t))
	for i := 0; i < 100; i += 2 { // even keys 0..98
		if err := tr.Insert(Key{K: float64(i), ID: 1}, val64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		seek  float64
		want  float64
		valid bool
	}{
		{-5, 0, true},
		{0, 0, true},
		{1, 2, true},
		{97, 98, true},
		{98, 98, true},
		{98.5, 0, false},
	}
	for _, tc := range tests {
		c, err := tr.SeekGE(Key{K: tc.seek})
		if err != nil {
			t.Fatal(err)
		}
		if c.Valid() != tc.valid {
			t.Errorf("SeekGE(%g).Valid = %v, want %v", tc.seek, c.Valid(), tc.valid)
			continue
		}
		if tc.valid && c.Key().K != tc.want {
			t.Errorf("SeekGE(%g) = %g, want %g", tc.seek, c.Key().K, tc.want)
		}
	}
}

func TestCursorPrev(t *testing.T) {
	tr := mustNew(t, newStore(t))
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(Key{K: float64(i), ID: 1}, val64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c, err := tr.SeekGE(Key{K: n - 1, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := n - 1; i >= 0; i-- {
		if !c.Valid() {
			t.Fatalf("cursor died at %d", i)
		}
		if c.Key().K != float64(i) {
			t.Fatalf("Prev walk at %d: key %g", i, c.Key().K)
		}
		if err := c.Prev(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Valid() {
		t.Fatal("cursor valid before the start")
	}
}

func TestBulkMatchesInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 3000
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: Key{K: rng.Float64() * 1000, ID: uint64(i)}, Val: val64(uint64(i))}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Key.Less(items[j].Key) })

	st := newStore(t)
	tr, err := Bulk(st, 8, items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	keys := collect(t, tr)
	for i := range items {
		if keys[i] != items[i].Key {
			t.Fatalf("bulk key %d = %+v, want %+v", i, keys[i], items[i].Key)
		}
	}
	// Every key findable.
	for i := 0; i < n; i += 97 {
		if _, found, _ := tr.Find(items[i].Key); !found {
			t.Fatalf("bulk-loaded key %+v not found", items[i].Key)
		}
	}
}

func TestBulkRejectsUnsorted(t *testing.T) {
	st := newStore(t)
	items := []Item{
		{Key: Key{K: 2}, Val: val64(0)},
		{Key: Key{K: 1}, Val: val64(0)},
	}
	if _, err := Bulk(st, 8, items, 1.0); err == nil {
		t.Fatal("Bulk accepted unsorted input")
	}
}

func TestBulkEmptyAndSingle(t *testing.T) {
	st := newStore(t)
	tr, err := Bulk(st, 8, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty bulk not empty")
	}
	tr2, err := Bulk(st, 8, []Item{{Key: Key{K: 1}, Val: val64(9)}}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	v, found, _ := tr2.Find(Key{K: 1})
	if !found || binary.LittleEndian.Uint64(v) != 9 {
		t.Fatal("single bulk item not found")
	}
}

func TestLeafForAndSeekInLeaf(t *testing.T) {
	st := newStore(t)
	var items []Item
	for i := 0; i < 1000; i++ {
		items = append(items, Item{Key: Key{K: float64(i), ID: 1}, Val: val64(uint64(i))})
	}
	tr, err := Bulk(st, 8, items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{K: 437, ID: 1}
	leaf, err := tr.LeafFor(k)
	if err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	st.DropCache()
	c, err := tr.SeekInLeaf(leaf, k)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || c.Key() != k {
		t.Fatalf("SeekInLeaf landed on %+v", c.Key())
	}
	if ios := st.Stats().Reads; ios > 2 {
		t.Fatalf("SeekInLeaf cost %d reads, want O(1) ≤ 2", ios)
	}
	// Stale leaf reference: point at the wrong leaf, expect fallback.
	wrongLeaf, _ := tr.LeafFor(Key{K: 2, ID: 1})
	c2, err := tr.SeekInLeaf(wrongLeaf, k)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Valid() || c2.Key() != k {
		t.Fatalf("SeekInLeaf fallback landed on %+v", c2.Key())
	}
}

func TestDropFreesPages(t *testing.T) {
	st := newStore(t)
	before := st.PagesInUse()
	tr := mustNew(t, st)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(Key{K: float64(i)}, val64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if st.PagesInUse() <= before {
		t.Fatal("tree allocated no pages?")
	}
	if err := tr.Drop(); err != nil {
		t.Fatal(err)
	}
	if got := st.PagesInUse(); got != before {
		t.Fatalf("PagesInUse after Drop = %d, want %d", got, before)
	}
}

func TestSearchCostLogarithmic(t *testing.T) {
	st := pager.MustOpenMem(4096, 0) // no cache: count every touch
	var items []Item
	const n = 200000
	for i := 0; i < n; i++ {
		items = append(items, Item{Key: Key{K: float64(i)}, Val: val64(uint64(i))})
	}
	tr, err := Bulk(st, 8, items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	const probes = 100
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < probes; i++ {
		if _, found, _ := tr.Find(Key{K: float64(rng.Intn(n))}); !found {
			t.Fatal("probe missed")
		}
	}
	per := float64(st.Stats().Reads) / probes
	if per > float64(tr.Height())+0.5 {
		t.Fatalf("search cost %.2f reads, height %d", per, tr.Height())
	}
}

// TestQuickShadowModel runs random insert/delete/find against a sorted-
// slice shadow model.
func TestQuickShadowModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := pager.MustOpenMem(testPageSize, 8)
		tr, err := New(st, 8)
		if err != nil {
			return false
		}
		shadow := map[Key]uint64{}
		for op := 0; op < 400; op++ {
			k := Key{K: float64(rng.Intn(40)), ID: uint64(rng.Intn(4))}
			switch rng.Intn(3) {
			case 0: // insert (unique per shadow: skip if present)
				if _, ok := shadow[k]; ok {
					continue
				}
				v := rng.Uint64()
				if err := tr.Insert(k, val64(v)); err != nil {
					return false
				}
				shadow[k] = v
			case 1: // delete
				found, err := tr.Delete(k)
				if err != nil {
					return false
				}
				_, want := shadow[k]
				if found != want {
					return false
				}
				delete(shadow, k)
			default: // find
				v, found, err := tr.Find(k)
				if err != nil {
					return false
				}
				want, ok := shadow[k]
				if found != ok {
					return false
				}
				if found && binary.LittleEndian.Uint64(v) != want {
					return false
				}
			}
			if tr.Len() != len(shadow) {
				return false
			}
		}
		// Full iteration matches the shadow's sorted keys.
		var want []Key
		for k := range shadow {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		var got []Key
		tr.Scan(MinKey(), func(k Key, _ []byte) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
