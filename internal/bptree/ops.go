package bptree

import (
	"fmt"
	"sort"

	"segdb/internal/pager"
)

// Insert adds the pair (k, val). Exact duplicate keys are permitted and
// kept adjacent; callers that need uniqueness make keys unique via Key.ID.
func (t *Tree) Insert(k Key, val []byte) error {
	if len(val) != t.valSize {
		return fmt.Errorf("%w: got %d, want %d", ErrValSize, len(val), t.valSize)
	}
	split, sep, right, err := t.insertAt(t.root, t.height, k, val)
	if err != nil {
		return err
	}
	if split {
		newRoot := t.st.Alloc()
		page := make([]byte, t.st.PageSize())
		initNode(page, nodeInternal)
		v := view(page)
		t.setIntChild0(v, t.root)
		t.putIntEntry(v, 0, sep, right)
		v.setCount(1)
		if err := t.st.Write(newRoot, page); err != nil {
			return err
		}
		t.root = newRoot
		t.height++
	}
	t.length++
	return nil
}

func (t *Tree) insertAt(id pager.PageID, level int, k Key, val []byte) (bool, Key, pager.PageID, error) {
	page, err := t.st.Read(id)
	if err != nil {
		return false, Key{}, 0, err
	}
	v := view(page)
	if level == 1 {
		return t.insertLeaf(id, v, k, val)
	}
	ci := t.childIndex(v, k)
	split, sep, right, err := t.insertAt(t.intChild(v, ci), level-1, k, val)
	if err != nil || !split {
		return false, Key{}, 0, err
	}
	// Insert (sep, right) after child ci: shift entries ci..n-1 one slot.
	sz := keySize + childSize
	copy(t.intEntryBytes(v, ci+1, v.n-ci), t.intEntryBytes(v, ci, v.n-ci))
	t.putIntEntry(v, ci, sep, right)
	v.setCount(v.n + 1)
	if v.n < t.intCap {
		return false, Key{}, 0, t.st.Write(id, page)
	}
	// Split internal node: middle key moves up.
	mid := v.n / 2
	upKey := t.intKey(v, mid)
	rightID := t.st.Alloc()
	rpage := make([]byte, t.st.PageSize())
	initNode(rpage, nodeInternal)
	rv := view(rpage)
	t.setIntChild0(rv, t.intChild(v, mid+1))
	nRight := v.n - mid - 1
	copy(rv.page[headerSize+childSize:headerSize+childSize+nRight*sz],
		t.intEntryBytes(v, mid+1, nRight))
	rv.setCount(nRight)
	v.setCount(mid)
	if err := t.st.Write(id, page); err != nil {
		return false, Key{}, 0, err
	}
	if err := t.st.Write(rightID, rpage); err != nil {
		return false, Key{}, 0, err
	}
	return true, upKey, rightID, nil
}

func (t *Tree) insertLeaf(id pager.PageID, v nodeView, k Key, val []byte) (bool, Key, pager.PageID, error) {
	pos := t.leafIndex(v, k)
	sz := keySize + t.valSize
	if v.n < t.leafCap {
		copy(t.leafEntryBytes(v, pos+1, v.n-pos), t.leafEntryBytes(v, pos, v.n-pos))
		t.putLeafEntry(v, pos, k, val)
		v.setCount(v.n + 1)
		return false, Key{}, 0, t.st.Write(id, v.page)
	}
	// Split: left keeps ceil(n/2), right gets the rest; then place the
	// new entry into whichever side owns its position.
	mid := (v.n + 1) / 2
	rightID := t.st.Alloc()
	rpage := make([]byte, t.st.PageSize())
	initNode(rpage, nodeLeaf)
	rv := view(rpage)
	nRight := v.n - mid
	copy(rv.page[headerSize:headerSize+nRight*sz], t.leafEntryBytes(v, mid, nRight))
	rv.setCount(nRight)
	v.setCount(mid)

	// Chain maintenance: id <-> rightID <-> oldNext.
	oldNext := v.next()
	rv.setNext(oldNext)
	rv.setPrev(id)
	v.setNext(rightID)
	if oldNext != pager.InvalidPage {
		npage, err := t.st.Read(oldNext)
		if err != nil {
			return false, Key{}, 0, err
		}
		nv := view(npage)
		nv.setPrev(rightID)
		if err := t.st.Write(oldNext, npage); err != nil {
			return false, Key{}, 0, err
		}
	}

	if pos <= mid {
		// Entry belongs to the left leaf. pos == mid is safe on the left:
		// leafIndex put every entry with key ≥ k at index ≥ pos, so the
		// right leaf's first key is ≥ k.
		copy(t.leafEntryBytes(v, pos+1, v.n-pos), t.leafEntryBytes(v, pos, v.n-pos))
		t.putLeafEntry(v, pos, k, val)
		v.setCount(v.n + 1)
	} else {
		rpos := pos - mid
		copy(rv.page[headerSize+(rpos+1)*sz:headerSize+(nRight+1)*sz],
			rv.page[headerSize+rpos*sz:headerSize+nRight*sz])
		t.putLeafEntry(rv, rpos, k, val)
		rv.setCount(nRight + 1)
	}

	if err := t.st.Write(id, v.page); err != nil {
		return false, Key{}, 0, err
	}
	if err := t.st.Write(rightID, rpage); err != nil {
		return false, Key{}, 0, err
	}
	return true, t.leafKey(rv, 0), rightID, nil
}

// Delete removes one entry with exactly key k and returns whether one was
// found. Leaves are not merged or reclaimed on underflow: the structures
// above amortize space by periodic rebuilding, as the paper's update
// schemes do, so compaction happens at rebuild time.
func (t *Tree) Delete(k Key) (bool, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		page, err := t.st.Read(id)
		if err != nil {
			return false, err
		}
		v := view(page)
		id = t.intChild(v, t.childIndexLB(v, k))
	}
	// Equal keys may span leaves; walk forward while the key matches.
	for id != pager.InvalidPage {
		page, err := t.st.Read(id)
		if err != nil {
			return false, err
		}
		v := view(page)
		pos := t.leafIndex(v, k)
		if pos < v.n {
			got := t.leafKey(v, pos)
			if got != k {
				return false, nil
			}
			copy(t.leafEntryBytes(v, pos, v.n-pos-1), t.leafEntryBytes(v, pos+1, v.n-pos-1))
			v.setCount(v.n - 1)
			t.length--
			return true, t.st.Write(id, page)
		}
		id = v.next()
	}
	return false, nil
}

// Find returns the value of the first entry with exactly key k.
func (t *Tree) Find(k Key) ([]byte, bool, error) {
	c, err := t.SeekGE(k)
	if err != nil {
		return nil, false, err
	}
	if !c.Valid() || c.Key() != k {
		return nil, false, nil
	}
	return c.Val(), true, nil
}

// LeafFor returns the page ID of the leaf that SeekGE(k) would land on.
// The Solution-2 fractional-cascading bridges store these as direct leaf
// references (Section 4.3): following a bridge is then O(1) I/Os instead
// of a root-to-leaf search.
func (t *Tree) LeafFor(k Key) (pager.PageID, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		page, err := t.st.Read(id)
		if err != nil {
			return pager.InvalidPage, err
		}
		v := view(page)
		id = t.intChild(v, t.childIndexLB(v, k))
	}
	return id, nil
}

// Cursor iterates leaf entries in key order. It is invalidated by any
// mutation of the tree.
type Cursor struct {
	t     *Tree
	page  []byte
	id    pager.PageID
	v     nodeView
	idx   int
	valid bool
}

// SeekGE positions a cursor at the first entry with key ≥ k.
func (t *Tree) SeekGE(k Key) (*Cursor, error) {
	id, err := t.LeafFor(k)
	if err != nil {
		return nil, err
	}
	c := &Cursor{t: t}
	if err := c.load(id); err != nil {
		return nil, err
	}
	c.idx = t.leafIndex(c.v, k)
	c.valid = true
	return c, c.normalize()
}

// SeekInLeaf positions a cursor at the first entry ≥ k, starting the
// search at the given leaf. If the leaf no longer covers k (it was split
// since the reference was taken), it falls back to a root search — the
// lazy-repair behaviour the bridge navigation relies on.
func (t *Tree) SeekInLeaf(leaf pager.PageID, k Key) (*Cursor, error) {
	c := &Cursor{t: t}
	if err := c.load(leaf); err != nil || c.v.typ != nodeLeaf {
		return t.SeekGE(k)
	}
	// k must be ≥ the leaf's first key (or this is the chain head), and
	// ≤ its last key or the leaf's successor's first key is > k.
	if c.v.n == 0 {
		return t.SeekGE(k)
	}
	if k.Less(t.leafKey(c.v, 0)) && c.v.prev() != pager.InvalidPage {
		return t.SeekGE(k)
	}
	c.idx = t.leafIndex(c.v, k)
	c.valid = true
	if c.idx < c.v.n {
		return c, nil
	}
	// k is beyond this leaf. Spilling into the immediate successor is the
	// only O(1) case; anything farther means the reference is stale.
	next := c.v.next()
	if next == pager.InvalidPage {
		c.valid = false
		return c, nil
	}
	npage, err := t.st.Read(next)
	if err != nil {
		return nil, err
	}
	nv := view(npage)
	if nv.n > 0 && t.leafKey(nv, 0).Less(k) {
		return t.SeekGE(k)
	}
	c.page, c.id, c.v, c.idx = npage, next, nv, 0
	return c, c.normalize()
}

// First positions a cursor at the smallest entry.
func (t *Tree) First() (*Cursor, error) { return t.SeekGE(MinKey()) }

func (c *Cursor) load(id pager.PageID) error {
	page, err := c.t.st.Read(id)
	if err != nil {
		return err
	}
	c.page = page
	c.id = id
	c.v = view(page)
	return nil
}

// normalize advances past exhausted (or emptied) leaves.
func (c *Cursor) normalize() error {
	for c.valid && c.idx >= c.v.n {
		next := c.v.next()
		if next == pager.InvalidPage {
			c.valid = false
			return nil
		}
		if err := c.load(next); err != nil {
			return err
		}
		c.idx = 0
	}
	return nil
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current entry's key. The cursor must be valid.
func (c *Cursor) Key() Key { return c.t.leafKey(c.v, c.idx) }

// Val returns a copy of the current entry's value. The cursor must be valid.
func (c *Cursor) Val() []byte { return c.t.leafVal(c.v, c.idx) }

// Leaf returns the page ID of the leaf the cursor is on.
func (c *Cursor) Leaf() pager.PageID { return c.id }

// Next advances to the following entry, invalidating at the end.
func (c *Cursor) Next() error {
	if !c.valid {
		return nil
	}
	c.idx++
	return c.normalize()
}

// Prev steps to the preceding entry, invalidating before the start.
func (c *Cursor) Prev() error {
	if !c.valid {
		return nil
	}
	c.idx--
	for c.valid && c.idx < 0 {
		prev := c.v.prev()
		if prev == pager.InvalidPage {
			c.valid = false
			return nil
		}
		if err := c.load(prev); err != nil {
			return err
		}
		c.idx = c.v.n - 1
	}
	return nil
}

// Scan calls fn for each entry with key ≥ from, in order, until fn returns
// false or the tree is exhausted.
func (t *Tree) Scan(from Key, fn func(Key, []byte) bool) error {
	c, err := t.SeekGE(from)
	if err != nil {
		return err
	}
	for c.Valid() {
		if !fn(c.Key(), c.Val()) {
			return nil
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// Bulk builds a tree from items, which must be sorted by key; it packs
// leaves to fillFraction of capacity (clamped to [0.5, 1]) and builds the
// internal levels bottom-up — O(n) I/Os rather than N inserts.
func Bulk(st *pager.Store, valSize int, items []Item, fillFraction float64) (*Tree, error) {
	t, err := shape(st, valSize)
	if err != nil {
		return nil, err
	}
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Key.Less(items[j].Key) }) {
		return nil, fmt.Errorf("bptree: Bulk input not sorted")
	}
	if fillFraction < 0.5 {
		fillFraction = 0.5
	}
	if fillFraction > 1 {
		fillFraction = 1
	}
	if len(items) == 0 {
		return New(st, valSize)
	}
	perLeaf := int(float64(t.leafCap) * fillFraction)
	if perLeaf < 1 {
		perLeaf = 1
	}

	type nodeRef struct {
		id    pager.PageID
		first Key
	}
	var level []nodeRef
	var prevLeaf pager.PageID
	for start := 0; start < len(items); start += perLeaf {
		end := start + perLeaf
		if end > len(items) {
			end = len(items)
		}
		id := st.Alloc()
		page := make([]byte, st.PageSize())
		initNode(page, nodeLeaf)
		v := view(page)
		for i, it := range items[start:end] {
			if len(it.Val) != valSize {
				return nil, fmt.Errorf("%w: item %d", ErrValSize, start+i)
			}
			t.putLeafEntry(v, i, it.Key, it.Val)
		}
		v.setCount(end - start)
		v.setPrev(prevLeaf)
		if prevLeaf != pager.InvalidPage {
			ppage, err := st.Read(prevLeaf)
			if err != nil {
				return nil, err
			}
			pv := view(ppage)
			pv.setNext(id)
			if err := st.Write(prevLeaf, ppage); err != nil {
				return nil, err
			}
		}
		if err := st.Write(id, page); err != nil {
			return nil, err
		}
		prevLeaf = id
		level = append(level, nodeRef{id: id, first: items[start].Key})
	}
	t.height = 1
	perInt := (t.intCap * 3) / 4
	if perInt < 2 {
		perInt = 2
	}
	for len(level) > 1 {
		var up []nodeRef
		for start := 0; start < len(level); {
			end := start + perInt
			if end > len(level) {
				end = len(level)
			}
			if end-start == 1 && len(up) > 0 {
				// Avoid a 0-key internal node: rebuild the previous group
				// extended by the lone trailing child. perInt ≤ intCap, so
				// perInt+1 children (= perInt keys) still fit.
				start -= perInt
				end = len(level)
				t.st.Free(up[len(up)-1].id)
				up = up[:len(up)-1]
			}
			id := st.Alloc()
			page := make([]byte, st.PageSize())
			initNode(page, nodeInternal)
			v := view(page)
			t.setIntChild0(v, level[start].id)
			for i := start + 1; i < end; i++ {
				t.putIntEntry(v, i-start-1, level[i].first, level[i].id)
			}
			v.setCount(end - start - 1)
			if err := st.Write(id, page); err != nil {
				return nil, err
			}
			up = append(up, nodeRef{id: id, first: level[start].first})
			start = end
		}
		level = up
		t.height++
	}
	t.root = level[0].id
	t.length = len(items)
	return t, nil
}

// Drop frees every page of the tree, leaving the handle unusable.
func (t *Tree) Drop() error {
	return t.dropRec(t.root, t.height)
}

func (t *Tree) dropRec(id pager.PageID, level int) error {
	if level > 1 {
		page, err := t.st.Read(id)
		if err != nil {
			return err
		}
		v := view(page)
		for i := 0; i <= v.n; i++ {
			if err := t.dropRec(t.intChild(v, i), level-1); err != nil {
				return err
			}
		}
	}
	t.st.Free(id)
	return nil
}
