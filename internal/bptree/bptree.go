// Package bptree implements an external-memory B+-tree over a pager.Store:
// the classical O(log_B n + t) ordered index [Comer 1979] cited as [7] in
// the paper. Within this module it serves three masters: the multislab
// lists of the Solution-2 segment tree G (Section 4.2), the endpoint
// indexes of the baselines, and utility ordered storage in tests.
//
// Keys are (float64, uint64) pairs — a coordinate plus an application tie-
// breaker — so duplicate coordinates order deterministically. Values are
// fixed-size byte records whose size is chosen at tree creation.
package bptree

import (
	"errors"
	"fmt"
	"math"

	"segdb/internal/pager"
)

// Key orders entries by coordinate K, breaking ties by ID.
type Key struct {
	K  float64
	ID uint64
}

// Less reports strict order between keys.
func (k Key) Less(o Key) bool {
	if k.K != o.K {
		return k.K < o.K
	}
	return k.ID < o.ID
}

// MinKey is below every key produced by the index structures.
func MinKey() Key { return Key{K: math.Inf(-1)} }

// Item is a key/value pair. Val must have the tree's value size.
type Item struct {
	Key Key
	Val []byte
}

const (
	nodeLeaf     = 1
	nodeInternal = 2

	// Header: type(1) pad(1) count(2) next(4) prev(4).
	headerSize = 12
	keySize    = 16 // K float64 + ID uint64
	childSize  = 4
)

// Tree is the B+-tree handle. The handle itself lives in memory (a real
// system would root it in a catalog page); all entries live in pages.
type Tree struct {
	st      *pager.Store
	valSize int
	root    pager.PageID
	height  int // 1 = root is a leaf
	length  int
	leafCap int
	intCap  int
}

// ErrValSize reports a value whose length differs from the tree's value size.
var ErrValSize = errors.New("bptree: value has wrong size")

// New creates an empty tree storing values of valSize bytes.
func New(st *pager.Store, valSize int) (*Tree, error) {
	t, err := shape(st, valSize)
	if err != nil {
		return nil, err
	}
	root := st.Alloc()
	page := make([]byte, st.PageSize())
	initNode(page, nodeLeaf)
	if err := st.Write(root, page); err != nil {
		return nil, err
	}
	t.root = root
	t.height = 1
	return t, nil
}

func shape(st *pager.Store, valSize int) (*Tree, error) {
	if valSize < 0 {
		return nil, fmt.Errorf("bptree: negative value size %d", valSize)
	}
	t := &Tree{
		st:      st,
		valSize: valSize,
		leafCap: (st.PageSize() - headerSize) / (keySize + valSize),
		intCap:  (st.PageSize() - headerSize - childSize) / (keySize + childSize),
	}
	if t.leafCap < 2 || t.intCap < 2 {
		return nil, fmt.Errorf("bptree: page size %d too small for value size %d",
			st.PageSize(), valSize)
	}
	return t, nil
}

// Attach reconstructs a handle for a tree whose pages already exist,
// from the triple persisted by Handle. Structures that keep B+-trees
// inside their own node pages (the interval tree's boundary lists, the
// Solution-2 multislab lists) store handles this way.
func Attach(st *pager.Store, valSize int, root pager.PageID, height, length int) (*Tree, error) {
	t, err := shape(st, valSize)
	if err != nil {
		return nil, err
	}
	if root == pager.InvalidPage || height < 1 {
		return nil, fmt.Errorf("bptree: attach to invalid handle (root=%d height=%d)", root, height)
	}
	t.root = root
	t.height = height
	t.length = length
	return t, nil
}

// Handle returns the persistent identity of the tree: its root page,
// height and length. The triple changes on mutation, so owners must
// re-persist it after every Insert or Delete.
func (t *Tree) Handle() (root pager.PageID, height, length int) {
	return t.root, t.height, t.length
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.length }

// Height returns the tree height in levels (1 = single leaf).
func (t *Tree) Height() int { return t.height }

// ValSize returns the fixed value size in bytes.
func (t *Tree) ValSize() int { return t.valSize }

func initNode(page []byte, typ uint8) {
	c := pager.NewBuf(page)
	c.PutU8(typ)
	c.PutU8(0)
	c.PutU16(0)
	c.PutPage(pager.InvalidPage)
	c.PutPage(pager.InvalidPage)
}

type nodeView struct {
	page []byte
	typ  uint8
	n    int
}

func view(page []byte) nodeView {
	c := pager.NewBuf(page)
	typ := c.U8()
	c.Skip(1)
	n := int(c.U16())
	return nodeView{page: page, typ: typ, n: n}
}

func (v *nodeView) setCount(n int) {
	v.n = n
	pager.NewBuf(v.page).Seek(2).PutU16(uint16(n))
}

func (v nodeView) next() pager.PageID { return pager.NewBuf(v.page).Seek(4).Page() }
func (v nodeView) prev() pager.PageID { return pager.NewBuf(v.page).Seek(8).Page() }

func (v nodeView) setNext(id pager.PageID) { pager.NewBuf(v.page).Seek(4).PutPage(id) }
func (v nodeView) setPrev(id pager.PageID) { pager.NewBuf(v.page).Seek(8).PutPage(id) }

// Leaf entry i occupies headerSize + i*(keySize+valSize).
func (t *Tree) leafKey(v nodeView, i int) Key {
	c := pager.NewBuf(v.page).Seek(headerSize + i*(keySize+t.valSize))
	return Key{K: c.F64(), ID: c.U64()}
}

func (t *Tree) leafVal(v nodeView, i int) []byte {
	off := headerSize + i*(keySize+t.valSize) + keySize
	out := make([]byte, t.valSize)
	copy(out, v.page[off:off+t.valSize])
	return out
}

func (t *Tree) putLeafEntry(v nodeView, i int, k Key, val []byte) {
	c := pager.NewBuf(v.page).Seek(headerSize + i*(keySize+t.valSize))
	c.PutF64(k.K)
	c.PutU64(k.ID)
	copy(v.page[c.Pos():c.Pos()+t.valSize], val)
}

func (t *Tree) leafEntryBytes(v nodeView, i, count int) []byte {
	sz := keySize + t.valSize
	return v.page[headerSize+i*sz : headerSize+(i+count)*sz]
}

// Internal layout: child0 at headerSize, then n × (key, child).
func (t *Tree) intChild(v nodeView, i int) pager.PageID {
	if i == 0 {
		return pager.NewBuf(v.page).Seek(headerSize).Page()
	}
	off := headerSize + childSize + (i-1)*(keySize+childSize) + keySize
	return pager.NewBuf(v.page).Seek(off).Page()
}

func (t *Tree) intKey(v nodeView, i int) Key {
	off := headerSize + childSize + i*(keySize+childSize)
	c := pager.NewBuf(v.page).Seek(off)
	return Key{K: c.F64(), ID: c.U64()}
}

func (t *Tree) setIntChild0(v nodeView, id pager.PageID) {
	pager.NewBuf(v.page).Seek(headerSize).PutPage(id)
}

func (t *Tree) putIntEntry(v nodeView, i int, k Key, child pager.PageID) {
	off := headerSize + childSize + i*(keySize+childSize)
	c := pager.NewBuf(v.page).Seek(off)
	c.PutF64(k.K)
	c.PutU64(k.ID)
	c.PutPage(child)
}

func (t *Tree) intEntryBytes(v nodeView, i, count int) []byte {
	sz := keySize + childSize
	return v.page[headerSize+childSize+i*sz : headerSize+childSize+(i+count)*sz]
}

// childIndex returns which child of internal node v covers key k for
// insertion: the largest i with key_i ≤ k (children left of key_0 at i = 0).
func (t *Tree) childIndex(v nodeView, k Key) int {
	lo, hi := 0, v.n // find count of keys ≤ k
	for lo < hi {
		mid := (lo + hi) / 2
		if !k.Less(t.intKey(v, mid)) { // key_mid ≤ k
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndexLB returns the child to descend into when looking for the
// FIRST entry ≥ k: the count of separator keys strictly below k. Exact-
// duplicate keys may span leaves, and a separator equal to k must send the
// search left of it.
func (t *Tree) childIndexLB(v nodeView, k Key) int {
	lo, hi := 0, v.n // find count of keys < k
	for lo < hi {
		mid := (lo + hi) / 2
		if t.intKey(v, mid).Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafIndex returns the position of the first entry with key ≥ k.
func (t *Tree) leafIndex(v nodeView, k Key) int {
	lo, hi := 0, v.n
	for lo < hi {
		mid := (lo + hi) / 2
		if t.leafKey(v, mid).Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
