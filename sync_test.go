package segdb_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"segdb"
	"segdb/internal/faultdev"
	"segdb/internal/pager"
	"segdb/internal/workload"
)

// TestSynchronizedConcurrentReaders runs parallel queries against a
// shared index (run with -race to exercise the store's locking).
func TestSynchronizedConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	segs := workload.Grid(rng, 14, 14, 0.9, 0.2)
	st := segdb.NewMemStore(16, 64)
	raw, err := segdb.BuildSolution2(st, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.Synchronized(raw)

	box := workload.BBox(segs)
	queries := workload.RandomVS(rng, 64, box, 3)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = len(segdb.FilterHits(q, segs))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				i := (g*31 + round) % len(queries)
				got := 0
				_, err := ix.Query(queries[i], func(segdb.Segment) { got++ })
				if err != nil {
					errs <- err
					return
				}
				if got != want[i] {
					errs <- errMismatch{got, want[i]}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch [2]int

func (e errMismatch) Error() string { return "concurrent query mismatch" }

// TestSynchronizedReadersAndWriter interleaves a writer with readers;
// readers must always see a consistent snapshot (answers ⊆ full pool and
// ⊇ the segments inserted before the reader started).
func TestSynchronizedReadersAndWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := workload.Levels(rng, 600, 300, 1.3)
	st := segdb.NewMemStore(16, 64)
	raw, err := segdb.BuildSolution1(st, segdb.Options{B: 16}, pool[:100])
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.Synchronized(raw)

	poolIDs := map[uint64]bool{}
	for _, s := range pool {
		poolIDs[s.ID] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 5)
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for _, s := range pool[100:] {
			if err := ix.Insert(s); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			localRng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 50; round++ {
				x := localRng.Float64() * 300
				q := segdb.VLine(x)
				baseline := 0 // segments from the initial 100 that q hits
				for _, s := range pool[:100] {
					if q.Hits(s) {
						baseline++
					}
				}
				got := 0
				_, err := ix.Query(q, func(s segdb.Segment) {
					if !poolIDs[s.ID] {
						errs <- errMismatch{int(s.ID), 0}
					}
					got++
				})
				if err != nil {
					errs <- err
					return
				}
				if got < baseline {
					errs <- errMismatch{got, baseline}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ix.Len() != len(pool) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(pool))
	}
}

// TestSyncCompact covers Compact through the Synchronized wrapper for both
// solutions: Solution 1 compacts under the exclusive lock; Solution 2
// reports ErrUnsupported. Either way the wrapper must release its lock —
// the follow-up operations would deadlock forever if an error path leaked
// the exclusive lock, so they run under a watchdog.
func TestSyncCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	segs := workload.Levels(rng, 400, 200, 1.3)

	st1 := segdb.NewMemStore(16, 32)
	raw1, err := segdb.BuildSolution1(st1, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	sync1 := segdb.Synchronized(raw1)
	for _, s := range segs[:300] {
		if _, err := sync1.Delete(s); err != nil {
			t.Fatal(err)
		}
	}
	before := st1.PagesInUse()
	if err := segdb.Compact(sync1); err != nil {
		t.Fatalf("Compact(Synchronized(sol1)) = %v", err)
	}
	if st1.PagesInUse() >= before {
		t.Fatalf("synchronized Compact reclaimed nothing: %d -> %d", before, st1.PagesInUse())
	}

	st2 := segdb.NewMemStore(16, 32)
	raw2, err := segdb.BuildSolution2(st2, segdb.Options{B: 16}, segs[:100])
	if err != nil {
		t.Fatal(err)
	}
	sync2 := segdb.Synchronized(raw2)
	if err := segdb.Compact(sync2); err != segdb.ErrUnsupported {
		t.Fatalf("Compact(Synchronized(sol2)) = %v, want ErrUnsupported", err)
	}

	// A doubly wrapped index still routes to the inner implementation.
	if err := segdb.Compact(segdb.Synchronized(sync1)); err != nil {
		t.Fatalf("Compact(Synchronized(Synchronized(sol1))) = %v", err)
	}

	// Both wrappers must be fully usable after Compact, including after the
	// ErrUnsupported path: a leaked lock would hang these operations.
	done := make(chan error, 1)
	go func() {
		for _, ix := range []*segdb.SyncIndex{sync1, sync2} {
			if err := ix.Insert(segdb.NewSegment(1e6, 0, -5, 10, -5)); err != nil {
				done <- err
				return
			}
			if _, err := ix.Query(segdb.VLine(5), func(segdb.Segment) {}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("index unusable after Compact: a lock was not released on an error path")
	}
}

// TestSyncMixedWorkloadStress runs parallel Query, Insert and Delete
// traffic against Synchronized(Solution1) over a pooled store (run with
// -race). A static base set is never touched, so every query's answers
// must contain FilterHits(base) exactly, and every extra answer must be a
// churn segment that genuinely intersects the query. After the churn
// writers finish (every churn segment inserted, half deleted), the final
// contents must match ground truth exactly.
func TestSyncMixedWorkloadStress(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	all := workload.Levels(rng, 900, 300, 1.3)
	base, churn := all[:300], all[300:]
	st := segdb.NewMemStore(16, 64)
	raw, err := segdb.BuildSolution1(st, segdb.Options{B: 16}, base)
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.Synchronized(raw)

	baseIDs := map[uint64]bool{}
	for _, s := range base {
		baseIDs[s.ID] = true
	}
	churnIDs := map[uint64]bool{}
	for _, s := range churn {
		churnIDs[s.ID] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	inserted := make(chan segdb.Segment, len(churn))

	wg.Add(1)
	go func() { // inserter
		defer wg.Done()
		defer close(inserted)
		for _, s := range churn {
			if err := ix.Insert(s); err != nil {
				fail(err)
				return
			}
			inserted <- s
		}
	}()
	wg.Add(1)
	go func() { // deleter: removes every other inserted churn segment
		defer wg.Done()
		odd := false
		for s := range inserted {
			odd = !odd
			if !odd {
				continue
			}
			ok, err := ix.Delete(s)
			if err != nil {
				fail(err)
				return
			}
			if !ok {
				fail(errMismatch{int(s.ID), -1})
				return
			}
		}
	}()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			localRng := rand.New(rand.NewSource(int64(100 + g)))
			for round := 0; round < 60; round++ {
				x := localRng.Float64() * 300
				lo := localRng.Float64() * 250
				q := segdb.VSeg(x, lo, lo+20)
				wantBase := map[uint64]bool{}
				for _, s := range base {
					if q.Hits(s) {
						wantBase[s.ID] = true
					}
				}
				got := map[uint64]bool{}
				_, err := ix.Query(q, func(s segdb.Segment) {
					if got[s.ID] {
						fail(errMismatch{int(s.ID), -2}) // duplicate report
						return
					}
					got[s.ID] = true
					if baseIDs[s.ID] {
						return
					}
					// Anything beyond the base set must be a churn segment
					// that really intersects q.
					if !churnIDs[s.ID] || !q.Hits(s) {
						fail(errMismatch{int(s.ID), -3})
					}
				})
				if err != nil {
					fail(err)
					return
				}
				for id := range wantBase {
					if !got[id] {
						fail(errMismatch{int(id), -4}) // lost a base answer
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: exact ground truth over the final contents.
	final := append([]segdb.Segment{}, base...)
	for i, s := range churn {
		if i%2 == 1 { // the deleter removed odd-indexed arrivals
			final = append(final, s)
		}
	}
	if ix.Len() != len(final) {
		t.Fatalf("final Len = %d, want %d", ix.Len(), len(final))
	}
	qRng := rand.New(rand.NewSource(42))
	for round := 0; round < 40; round++ {
		x := qRng.Float64() * 300
		lo := qRng.Float64() * 250
		q := segdb.VSeg(x, lo, lo+25)
		want := segdb.FilterHits(q, final)
		got, err := segdb.CollectQuery(ix, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d hits, want %d", round, len(got), len(want))
		}
	}
}

// TestSyncIOAttribution: SynchronizedOn brackets every query with the
// store's read counters, so serial queries carry exact per-query
// PagesRead/PoolHits — a cold pool shows physical reads, a warm re-run
// of the same query shows pool hits instead, and the per-query deltas
// sum to the store's own counter movement.
func TestSyncIOAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segs := workload.Grid(rng, 12, 12, 0.9, 0.2)
	pageSize := segdb.PageSizeFor(16)
	st, err := pager.Open(pager.NewMemDevice(pageSize), pageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := segdb.CreateSolution2(st, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.SynchronizedOn(raw, st)
	box := workload.BBox(segs)
	q := segdb.VSeg((box.MinX+box.MaxX)/2, box.MinY, box.MaxY)

	r0, h0 := st.ReadStats()
	stats, err := ix.Query(q, func(segdb.Segment) {})
	if err != nil {
		t.Fatal(err)
	}
	r1, h1 := st.ReadStats()
	if stats.PagesRead == 0 {
		t.Fatal("query on a cold 4-page pool attributed zero physical reads")
	}
	if stats.PagesRead != r1-r0 || stats.PoolHits != h1-h0 {
		t.Fatalf("serial attribution inexact: query saw %d reads/%d hits, store moved %d/%d",
			stats.PagesRead, stats.PoolHits, r1-r0, h1-h0)
	}

	// The plain wrapper attributes nothing: zero stays zero.
	plain := segdb.Synchronized(raw)
	pstats, err := plain.Query(q, func(segdb.Segment) {})
	if err != nil {
		t.Fatal(err)
	}
	if pstats.PagesRead != 0 || pstats.PoolHits != 0 {
		t.Fatalf("Synchronized (no store) attributed I/O: %+v", pstats)
	}

	// QueryBatch over SynchronizedOn carries attribution per result.
	queries := workload.RandomStabs(rng, 8, box)
	var pages int64
	for i, br := range segdb.QueryBatch(ix, queries, 2) {
		if br.Err != nil {
			t.Fatalf("batch[%d]: %v", i, br.Err)
		}
		pages += br.Stats.PagesRead + br.Stats.PoolHits
	}
	if pages == 0 {
		t.Fatal("batch over SynchronizedOn attributed no page touches at all")
	}
}

// TestSyncSurfacesFaults: the concurrency wrapper adds no error
// swallowing — injected device faults come back typed through Query and
// land per-query in QueryBatch results.
func TestSyncSurfacesFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	segs := workload.Grid(rng, 10, 10, 0.9, 0.2)
	pageSize := segdb.PageSizeFor(16)
	dev := faultdev.New(pager.NewMemDevice(pageSize), 1)
	st, err := pager.Open(dev, pageSize, 0) // zero cache: faults reach queries
	if err != nil {
		t.Fatal(err)
	}
	raw, err := segdb.CreateSolution2(st, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.Synchronized(raw)
	box := workload.BBox(segs)
	queries := workload.RandomStabs(rng, 6, box)

	dev.SetBudget(0)
	if _, err := ix.Query(queries[0], func(segdb.Segment) {}); !errors.Is(err, faultdev.ErrInjected) {
		t.Fatalf("query on dead disk: %v, want ErrInjected", err)
	}
	for i, br := range segdb.QueryBatch(ix, queries, 3) {
		if !errors.Is(br.Err, faultdev.ErrInjected) {
			t.Fatalf("batch[%d] on dead disk: %v, want ErrInjected", i, br.Err)
		}
	}

	// A crashed device is just as visible through the wrapper.
	dev.SetBudget(-1)
	dev.Crash()
	if _, err := ix.Query(queries[0], func(segdb.Segment) {}); !errors.Is(err, faultdev.ErrCrashed) {
		t.Fatalf("query on crashed device: %v, want ErrCrashed", err)
	}
}

// TestSyncQueryContextCancelBackfillsStats is the regression test for
// cancelled queries returning zero QueryStats: the queryAborted panic
// unwinds past the `st, err = Query(...)` assignment, so before the fix
// a query that had already delivered hundreds of segments reported
// Reported = 0 next to non-zero PagesRead — internally inconsistent
// slow-log rows. The stats of a cancelled query must now cover at least
// the segments actually delivered. Run with -race.
func TestSyncQueryContextCancelBackfillsStats(t *testing.T) {
	// 300 stacked horizontal segments all crossing the query line, so a
	// stab delivers far more than the 64-emission cancellation stride.
	var segs []segdb.Segment
	for i := 1; i <= 300; i++ {
		segs = append(segs, segdb.NewSegment(uint64(i), 0, float64(i), 10, float64(i)))
	}
	st := segdb.NewMemStore(16, 4)
	raw, err := segdb.BuildSolution1(st, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.SynchronizedOn(raw, st)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	qst, err := ix.QueryContext(ctx, segdb.VLine(5), func(segdb.Segment) {
		if delivered++; delivered == 100 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (did the query finish before cancelling?)", err)
	}
	if delivered < 100 || delivered >= len(segs) {
		t.Fatalf("cancellation did not abort mid-emission: delivered %d of %d", delivered, len(segs))
	}
	if qst.Reported < delivered {
		t.Fatalf("cancelled query stats lost its work: Reported = %d, delivered = %d", qst.Reported, delivered)
	}
	if qst.PagesRead+qst.PoolHits == 0 {
		t.Fatalf("cancelled query reports no I/O despite delivering %d segments", delivered)
	}
}

// TestSyncUpdateIOAttribution: InsertStats/DeleteStats bracket updates
// with the same I/O window queries get, extended with pages written, so
// write endpoints can report per-update cost. A wrapper built without a
// store stays inert.
func TestSyncUpdateIOAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := workload.Grid(rng, 8, 8, 0.9, 0.2)
	st := segdb.NewMemStore(16, 64)
	raw, err := segdb.BuildSolution1(st, segdb.Options{B: 16}, segs[:len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.SynchronizedOn(raw, st)

	extra := segs[len(segs)-1]
	ist, err := ix.InsertStats(extra)
	if err != nil {
		t.Fatal(err)
	}
	if ist.PagesWritten == 0 {
		t.Fatalf("insert reported no pages written: %+v", ist)
	}
	found, dst, err := ix.DeleteStats(extra)
	if err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if dst.PagesRead+dst.PoolHits+dst.PagesWritten == 0 {
		t.Fatalf("delete reported no I/O at all: %+v", dst)
	}

	// Without a store there is nothing to attribute: all-zero stats.
	plain := segdb.Synchronized(raw)
	pst, err := plain.InsertStats(extra)
	if err != nil {
		t.Fatal(err)
	}
	if pst != (segdb.UpdateStats{}) {
		t.Fatalf("storeless wrapper attributed I/O: %+v", pst)
	}
	if _, _, err := plain.DeleteStats(extra); err != nil {
		t.Fatal(err)
	}
}
