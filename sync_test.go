package segdb_test

import (
	"math/rand"
	"sync"
	"testing"

	"segdb"
	"segdb/internal/workload"
)

// TestSynchronizedConcurrentReaders runs parallel queries against a
// shared index (run with -race to exercise the store's locking).
func TestSynchronizedConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	segs := workload.Grid(rng, 14, 14, 0.9, 0.2)
	st := segdb.NewMemStore(16, 64)
	raw, err := segdb.BuildSolution2(st, segdb.Options{B: 16}, segs)
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.Synchronized(raw)

	box := workload.BBox(segs)
	queries := workload.RandomVS(rng, 64, box, 3)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = len(segdb.FilterHits(q, segs))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				i := (g*31 + round) % len(queries)
				got := 0
				_, err := ix.Query(queries[i], func(segdb.Segment) { got++ })
				if err != nil {
					errs <- err
					return
				}
				if got != want[i] {
					errs <- errMismatch{got, want[i]}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch [2]int

func (e errMismatch) Error() string { return "concurrent query mismatch" }

// TestSynchronizedReadersAndWriter interleaves a writer with readers;
// readers must always see a consistent snapshot (answers ⊆ full pool and
// ⊇ the segments inserted before the reader started).
func TestSynchronizedReadersAndWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := workload.Levels(rng, 600, 300, 1.3)
	st := segdb.NewMemStore(16, 64)
	raw, err := segdb.BuildSolution1(st, segdb.Options{B: 16}, pool[:100])
	if err != nil {
		t.Fatal(err)
	}
	ix := segdb.Synchronized(raw)

	poolIDs := map[uint64]bool{}
	for _, s := range pool {
		poolIDs[s.ID] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 5)
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for _, s := range pool[100:] {
			if err := ix.Insert(s); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			localRng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 50; round++ {
				x := localRng.Float64() * 300
				q := segdb.VLine(x)
				baseline := 0 // segments from the initial 100 that q hits
				for _, s := range pool[:100] {
					if q.Hits(s) {
						baseline++
					}
				}
				got := 0
				_, err := ix.Query(q, func(s segdb.Segment) {
					if !poolIDs[s.ID] {
						errs <- errMismatch{int(s.ID), 0}
					}
					got++
				})
				if err != nil {
					errs <- err
					return
				}
				if got < baseline {
					errs <- errMismatch{got, baseline}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ix.Len() != len(pool) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(pool))
	}
}
