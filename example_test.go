package segdb_test

import (
	"fmt"

	"segdb"
)

// Building an index and answering the paper's three query shapes.
func ExampleBuildSolution2() {
	segs := []segdb.Segment{
		segdb.NewSegment(1, 0, 0, 10, 10), // a road
		segdb.NewSegment(2, 0, 5, 5, 5),   // a river touching it at (5,5)
		segdb.NewSegment(3, 2, 20, 8, 20), // a power line above
	}
	store := segdb.NewMemStore(16, 64)
	index, err := segdb.BuildSolution2(store, segdb.Options{}, segs)
	if err != nil {
		panic(err)
	}

	hits, _ := segdb.CollectQuery(index, segdb.VSeg(5, 0, 6)) // segment query
	fmt.Println("segment x=5, 0..6:", len(hits))
	hits, _ = segdb.CollectQuery(index, segdb.VRayUp(5, 6)) // ray query
	fmt.Println("ray x=5, y>=6:", len(hits))
	hits, _ = segdb.CollectQuery(index, segdb.VLine(5)) // stabbing query
	fmt.Println("line x=5:", len(hits))
	// Output:
	// segment x=5, 0..6: 2
	// ray x=5, y>=6: 1
	// line x=5: 3
}

// Queries of any fixed direction: rotate the data once, then rotate each
// query (the paper's footnote 1).
func ExampleRotationAligning() {
	segs := []segdb.Segment{
		segdb.NewSegment(1, 0, 0, 1, 10), // steep, crossed by horizontal queries
		segdb.NewSegment(2, 5, 0, 6, 10),
	}
	rot := segdb.RotationAligning(segdb.Point{X: 1, Y: 0}) // horizontal → vertical
	store := segdb.NewMemStore(16, 64)
	index, err := segdb.BuildSolution1(store, segdb.Options{}, rot.ApplySegs(segs))
	if err != nil {
		panic(err)
	}
	q := rot.ApplyQuery(segdb.Point{X: -1, Y: 5}, segdb.Point{X: 2, Y: 5})
	hits, _ := segdb.CollectQuery(index, q)
	fmt.Println("horizontal query hits:", len(hits))
	// Output:
	// horizontal query hits: 1
}

// Repairing raw (crossing) data into the NCT model before indexing.
func ExamplePlanarize() {
	raw := []segdb.Segment{
		segdb.NewSegment(1, 0, 0, 10, 10),
		segdb.NewSegment(2, 0, 10, 10, 0), // crosses the first at (5,5)
	}
	pieces := segdb.Planarize(raw, 100)
	fmt.Println("pieces:", len(pieces))
	segs := make([]segdb.Segment, len(pieces))
	for i, p := range pieces {
		segs[i] = p.Seg
	}
	fmt.Println("valid:", segdb.ValidateNCT(segs) == nil)
	// Output:
	// pieces: 4
	// valid: true
}

// Persisting an index and reopening it without a rebuild.
func ExampleOpen() {
	store := segdb.NewMemStore(16, 64)
	segs := []segdb.Segment{segdb.NewSegment(1, 0, 0, 10, 0)}
	ix, err := segdb.CreateSolution2(store, segdb.Options{}, segs)
	if err != nil {
		panic(err)
	}
	_ = ix
	// ... later (or in another process over the same file store):
	reopened, err := segdb.Open(store)
	if err != nil {
		panic(err)
	}
	fmt.Println("reopened with", reopened.Len(), "segment")
	// Output:
	// reopened with 1 segment
}
